"""Resilient retrieval: deadlines, retries, reroutes, graceful degradation.

:class:`ResilientRetrieval` fronts either base backend (``pgas`` or
``baseline``) with a per-batch fault-handling state machine:

1. **Partition** — at batch start, every directed pair with remote output
   is checked against the live link state.  Traffic toward an unreachable
   destination is stripped from the base workloads and either *rerouted*
   (two-hop bulk forward through a healthy intermediate, charging both
   links) or marked *degraded*.
2. **Attempt with deadline** — the base backend's ``batch_process`` (plus
   any forwarding transfers) races a per-attempt deadline.  On breach the
   attempt is abandoned (its in-flight work still occupies streams and
   links — retries queue behind it, as on real hardware) and retried
   after exponential backoff with seeded jitter.
3. **Graceful degradation** — once retries are exhausted, a final
   local-only pass (every remote byte stripped) always completes.
   Degraded bags are served from the optional hot-row fallback cache when
   fully covered, and zero-filled otherwise; the batch reports a
   ``degraded_fraction`` instead of failing.

With no deadline and a healthy fabric the wrapper adds *zero* simulated
time and reproduces the wrapped backend's outputs, timings, and wire
bytes exactly — the healthy path is the base path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..cache.hotrow import CacheConfig, HotRowCache
from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.sharding import TableWiseSharding, minibatch_bounds
from ..core.workload import DeviceWorkload
from ..dlrm.batch import SparseBatch
from ..dlrm.embedding import segment_pool
from ..dlrm.hashing import hash_indices
from ..simgpu.cluster import Cluster
from ..simgpu.units import us
from .injector import pair_is_down

__all__ = [
    "ResilienceSpec",
    "BatchOutcome",
    "ResilientRetrieval",
    "RETRY_COUNTER",
    "REROUTE_COUNTER",
    "DEGRADED_COUNTER",
    "CACHE_SERVED_COUNTER",
]

#: profiler counters stamped at batch completion (only when non-zero,
#: so healthy traces stay byte-identical to the wrapped backend's)
RETRY_COUNTER = "faults.retries"
REROUTE_COUNTER = "faults.rerouted_bytes"
DEGRADED_COUNTER = "faults.degraded_bags"
CACHE_SERVED_COUNTER = "faults.cache_served_bags"


@dataclass(frozen=True)
class ResilienceSpec:
    """Policy knobs of the resilient wrapper.

    ``deadline_ns`` is the per-attempt EMB deadline (None disables the
    whole retry machinery — the zero-overhead healthy path).  Backoff
    before retry *k* (1-based) is ``backoff_base_ns * multiplier**(k-1)``
    stretched by a seeded uniform jitter in ``[0, jitter_fraction]``.
    ``fallback_cache`` equips per-device hot-row caches that serve fully
    covered degraded bags with real values instead of zeros.
    """

    deadline_ns: Optional[float] = None
    max_retries: int = 2
    backoff_base_ns: float = 50 * us
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.25
    reroute: bool = True
    fallback_cache: Optional[CacheConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_ns < 0:
            raise ValueError("backoff_base_ns must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not (0.0 <= self.jitter_fraction <= 1.0):
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.fallback_cache is not None and not isinstance(self.fallback_cache, CacheConfig):
            raise TypeError(
                f"fallback_cache must be a CacheConfig, got {type(self.fallback_cache).__name__}"
            )


@dataclass
class BatchOutcome:
    """What the resilience machinery did to one batch."""

    attempts: int = 1
    retries: int = 0
    rerouted_pairs: int = 0
    rerouted_bytes: float = 0.0
    degraded_bags: int = 0
    cache_served_bags: int = 0
    total_bags: int = 0
    deadline_missed: bool = False
    emb_ns: float = 0.0

    @property
    def degraded_fraction(self) -> float:
        """Zero-filled share of this batch's (sample, table) bags."""
        return self.degraded_bags / self.total_bags if self.total_bags else 0.0

    @property
    def healthy(self) -> bool:
        """True when the batch needed no resilience action at all."""
        return (
            self.retries == 0
            and self.rerouted_pairs == 0
            and self.degraded_bags == 0
            and self.cache_served_bags == 0
            and not self.deadline_missed
        )


@dataclass
class _BatchState:
    """Partition decisions carried from the timed to the functional path."""

    workloads: List[DeviceWorkload]
    forwards: List[Tuple[int, int, int, float]]  #: (src, via, dst, payload)
    degraded_pairs: Set[Tuple[int, int]]  #: (owner, dst) zero-filled pairs
    remote_bags: Dict[Tuple[int, int], int]
    cache_served: Dict[Tuple[int, str], Tuple[np.ndarray, Optional[np.ndarray]]]
    outcome: BatchOutcome
    fully_degraded: bool = False


class ResilientRetrieval(RetrievalBackend):
    """A base retrieval backend wrapped in the fault-handling state machine.

    Standalone use takes a cluster plus sharding plan; as a registered
    backend (``"pgas+resilient"``, ``"baseline+resilient"``) it is built
    from a :class:`~repro.core.retrieval.DistributedEmbedding` and its
    ``resilience`` config.
    """

    requires_indices = False

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        spec: Optional[ResilienceSpec] = None,
        *,
        base: str = "pgas",
        collective_spec=None,
        pgas_spec=None,
        sharded: Optional[ShardedEmbeddingTables] = None,
    ):
        if base == "pgas":
            self.base = PGASFusedRetrieval(cluster, pgas_spec)
        elif base == "baseline":
            self.base = BaselineRetrieval(cluster, collective_spec)
        else:
            raise ValueError(f"unknown base backend {base!r} (use 'pgas' or 'baseline')")
        if cluster.n_devices != plan.n_devices:
            raise ValueError(
                f"cluster has {cluster.n_devices} devices, plan has {plan.n_devices}"
            )
        self.cluster = cluster
        self.table_plan = plan
        self.base_name = base
        self.spec = spec or ResilienceSpec()
        self.sharded = sharded
        self._rng = np.random.default_rng(self.spec.seed)
        self._tables = {}
        if sharded is not None:
            for tables in sharded.per_device:
                for t in tables:
                    self._tables[t.name] = t
        self._fallback: Optional[List[HotRowCache]] = None
        self._last_state: Optional[_BatchState] = None
        self.last_outcome: Optional[BatchOutcome] = None
        self.outcomes: List[BatchOutcome] = []

    # -- fallback cache ----------------------------------------------------------

    def _ensure_fallback(self) -> Optional[List[HotRowCache]]:
        if self.spec.fallback_cache is None:
            return None
        if self._fallback is None:
            plan = self.table_plan
            self._fallback = [
                HotRowCache(
                    dev,
                    [t for t in plan.table_configs if plan.owner_of(t.name) != dev.id],
                    self.spec.fallback_cache,
                    materialize=self.sharded is not None,
                )
                for dev in self.cluster.devices
            ]
        return self._fallback

    def warm_fallback(self, batches: Sequence[SparseBatch]) -> None:
        """Prime the fallback caches with the remote rows of ``batches``."""
        caches = self._ensure_fallback()
        if caches is None:
            raise ValueError("warm_fallback needs spec.fallback_cache set")
        plan = self.table_plan
        G = plan.n_devices
        for batch in batches:
            bounds = minibatch_bounds(batch.batch_size, G)
            for t in plan.table_configs:
                owner = plan.owner_of(t.name)
                source = self._weights_of(t.name)
                fld = batch.field(t.name)
                for g in range(G):
                    if g == owner:
                        continue
                    sl = fld.slice_samples(*bounds[g])
                    if not sl.nnz:
                        continue
                    rows = hash_indices(sl.indices, t.num_rows, t.hash_kind)
                    caches[g].lookup_rows(t.name, rows, source=source)

    def _weights_of(self, table_name: str) -> Optional[np.ndarray]:
        table = self._tables.get(table_name)
        return table.weights if table is not None else None

    # -- partition ---------------------------------------------------------------

    def _route_via(self, src: int, dst: int) -> Optional[int]:
        """A healthy intermediate for two-hop forwarding, or None."""
        if not self.spec.reroute:
            return None
        for k in range(self.cluster.n_devices):
            if k == src or k == dst:
                continue
            if not pair_is_down(self.cluster, src, k) and not pair_is_down(
                self.cluster, k, dst
            ):
                return k
        return None

    def _partition(
        self, workloads: Sequence[DeviceWorkload], batch: Optional[SparseBatch]
    ) -> _BatchState:
        """Strip unreachable destinations; decide reroute vs. degrade."""
        cluster = self.cluster
        G = cluster.n_devices
        outcome = BatchOutcome()
        remote_bags: Dict[Tuple[int, int], int] = {}
        adjusted = list(workloads)
        forwards: List[Tuple[int, int, int, float]] = []
        degraded_pairs: Set[Tuple[int, int]] = set()
        total_bags = 0
        for i, wl in enumerate(workloads):
            total_bags += wl.batch_size * wl.num_local_tables
            out = wl.output_bytes_by_dst
            bad: List[int] = []
            for d in range(G):
                if d == wl.device_id or out[d] <= 0:
                    continue
                remote_bags[(wl.device_id, d)] = int(round(out[d] / wl.row_bytes))
                if pair_is_down(cluster, wl.device_id, d):
                    bad.append(d)
            if not bad:
                continue
            block_dst = wl.block_dst_bytes.copy()
            for d in bad:
                nbytes = float(out[d])
                via = self._route_via(wl.device_id, d)
                if via is not None:
                    forwards.append((wl.device_id, via, d, nbytes))
                else:
                    degraded_pairs.add((wl.device_id, d))
                block_dst[:, d] = 0.0
            adjusted[i] = dataclasses.replace(wl, block_dst_bytes=block_dst)
        outcome.total_bags = total_bags
        outcome.rerouted_pairs = len(forwards)
        cache_served = self._consult_cache(batch, degraded_pairs)
        covered = sum(int(np.count_nonzero(m)) for m, _ in cache_served.values())
        outcome.cache_served_bags = covered
        outcome.degraded_bags = (
            sum(remote_bags.get(p, 0) for p in degraded_pairs) - covered
        )
        return _BatchState(
            workloads=adjusted,
            forwards=forwards,
            degraded_pairs=degraded_pairs,
            remote_bags=remote_bags,
            cache_served=cache_served,
            outcome=outcome,
        )

    def _consult_cache(
        self, batch: Optional[SparseBatch], degraded_pairs: Set[Tuple[int, int]]
    ) -> Dict[Tuple[int, str], Tuple[np.ndarray, Optional[np.ndarray]]]:
        """Serve fully covered bags of unreachable pairs from the caches.

        Returns ``(dst, table) -> (covered_mask, pooled_values)``; pooled
        values are None without materialised weights.
        """
        if not degraded_pairs or batch is None:
            return {}
        caches = self._ensure_fallback()
        if caches is None:
            return {}
        plan = self.table_plan
        bounds = minibatch_bounds(batch.batch_size, plan.n_devices)
        served: Dict[Tuple[int, str], Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        for owner, g in sorted(degraded_pairs):
            lo, hi = bounds[g]
            for t in plan.tables_on(owner):
                fld = batch.field(t.name)
                sl = fld.slice_samples(lo, hi)
                rows = hash_indices(sl.indices, t.num_rows, t.hash_kind)
                acc = caches[g].lookup_rows(t.name, rows, source=self._weights_of(t.name))
                lengths = fld.lengths[lo:hi].astype(np.int64)
                hits = np.zeros(hi - lo, dtype=np.int64)
                if sl.nnz:
                    sample_ids = np.repeat(np.arange(hi - lo), lengths)
                    np.add.at(hits, sample_ids[acc.hit_mask], 1)
                covered = (hits == lengths) & (lengths > 0)
                if not np.any(covered):
                    continue
                pooled = None
                if acc.values is not None:
                    pooled = segment_pool(acc.values, sl.offsets, t.pooling)
                served[(g, t.name)] = (covered, pooled)
        return served

    def _strip_remote(
        self, workloads: Sequence[DeviceWorkload]
    ) -> List[DeviceWorkload]:
        """Local-only variants: every off-diagonal destination removed."""
        stripped: List[DeviceWorkload] = []
        for wl in workloads:
            out = wl.output_bytes_by_dst
            if float(out.sum() - out[wl.device_id]) <= 0:
                stripped.append(wl)
                continue
            block_dst = wl.block_dst_bytes.copy()
            for d in range(wl.n_devices):
                if d != wl.device_id:
                    block_dst[:, d] = 0.0
            stripped.append(dataclasses.replace(wl, block_dst_bytes=block_dst))
        return stripped

    # -- timed path --------------------------------------------------------------

    def _message_params(self) -> Tuple[int, int]:
        """Wire framing of forwarded payloads, matching the base backend."""
        if isinstance(self.base, PGASFusedRetrieval):
            pspec = self.base.pgas.spec
            return pspec.message_bytes, pspec.header_bytes
        cspec = self.base.collectives.spec
        return 0, cspec.per_chunk_header_bytes

    def _forward_route(
        self, cluster: Cluster, src: int, via: int, dst: int,
        nbytes: float, outcome: BatchOutcome,
    ):
        """Two-hop store-and-forward src → via → dst, charging both links."""
        mb, hb = self._message_params()
        yield cluster.interconnect.transfer(
            src, via, nbytes, message_bytes=mb, header_bytes=hb,
            counter=REROUTE_COUNTER,
        )
        yield cluster.interconnect.transfer(
            via, dst, nbytes, message_bytes=mb, header_bytes=hb,
            counter=REROUTE_COUNTER,
        )
        outcome.rerouted_bytes += nbytes

    def _attempt(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        forwards: Sequence[Tuple[int, int, int, float]],
        timing: PhaseTiming,
        outcome: BatchOutcome,
        stream_suffix: str = "",
    ):
        engine = cluster.engine
        procs = [
            engine.process(
                self.base.batch_process(
                    cluster, list(workloads), timing, stream_suffix=stream_suffix
                ),
                name=f"resilient_{self.base_name}",
            )
        ]
        for src, via, dst, nbytes in forwards:
            procs.append(
                engine.process(
                    self._forward_route(cluster, src, via, dst, nbytes, outcome),
                    name=f"reroute{src}->{via}->{dst}",
                )
            )
        yield engine.all_of(procs)

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        batch: Optional[SparseBatch] = None,
        stream_suffix: str = "",
    ):
        """Process generator for one batch — the full state machine.

        Composable into larger host programs exactly like the base
        backends' ``batch_process``; ``timing`` is filled at completion
        (``total_ns`` includes backoff and retries).  ``stream_suffix``
        passes through to the wrapped backend's per-batch stream set.
        """
        engine = cluster.engine
        spec = self.spec
        t0 = engine.now
        state = self._partition(workloads, batch)
        outcome = state.outcome
        attempt = 0
        while True:
            sub = PhaseTiming(batches=1)
            proc = engine.process(
                self._attempt(
                    cluster, state.workloads, state.forwards, sub, outcome,
                    stream_suffix=stream_suffix,
                ),
                name="resilient_attempt",
            )
            if spec.deadline_ns is None:
                yield proc
                completed = True
            else:
                yield engine.any_of([proc, engine.timeout(spec.deadline_ns)])
                completed = proc.triggered
            if completed:
                break
            outcome.retries += 1
            attempt += 1
            if attempt > spec.max_retries:
                # Retries exhausted: abandon the wire entirely and serve
                # whatever is local.  Every remote bag not already covered
                # by the fallback cache is zero-filled.
                outcome.deadline_missed = True
                state.fully_degraded = True
                outcome.degraded_bags = (
                    sum(state.remote_bags.values()) - outcome.cache_served_bags
                )
                sub = PhaseTiming(batches=1)
                yield engine.process(
                    self._attempt(
                        cluster, self._strip_remote(state.workloads), [], sub, outcome,
                        stream_suffix=stream_suffix,
                    ),
                    name="resilient_degraded",
                )
                break
            backoff = spec.backoff_base_ns * spec.backoff_multiplier ** (attempt - 1)
            backoff *= 1.0 + spec.jitter_fraction * float(self._rng.random())
            yield engine.timeout(backoff)
        outcome.attempts = attempt + 1
        timing.compute_ns = sub.compute_ns
        timing.comm_ns = sub.comm_ns
        timing.sync_unpack_ns = sub.sync_unpack_ns
        timing.total_ns = engine.now - t0
        outcome.emb_ns = timing.total_ns
        self._stamp_counters(outcome)
        self._last_state = state
        self.last_outcome = outcome
        self.outcomes.append(outcome)

    def _stamp_counters(self, outcome: BatchOutcome) -> None:
        prof = self.cluster.profiler
        t = self.cluster.engine.now
        # Only stamp non-zero deltas: a healthy batch leaves the profiler
        # byte-identical to the wrapped backend's.
        if outcome.retries:
            prof.add_count(RETRY_COUNTER, t, float(outcome.retries), unit="retries")
        if outcome.rerouted_bytes:
            prof.add_count(REROUTE_COUNTER + ".delivered", t, outcome.rerouted_bytes)
        if outcome.degraded_bags:
            prof.add_count(DEGRADED_COUNTER, t, float(outcome.degraded_bags), unit="bags")
        if outcome.cache_served_bags:
            prof.add_count(
                CACHE_SERVED_COUNTER, t, float(outcome.cache_served_bags), unit="bags"
            )

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch through the state machine on the cluster."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(
            lambda cl: self.batch_process(cl, workloads, timing, batch=batch)
        )
        return timing

    def pop_outcome(self) -> Optional[BatchOutcome]:
        """The most recent batch's outcome, consumed (None if already read)."""
        outcome, self.last_outcome = self.last_outcome, None
        return outcome

    def ledger_totals(self) -> Dict[str, float]:
        """Lifetime resilience totals across every batch, as a plain dict.

        This is the fault-side payload of a telemetry
        :class:`~repro.telemetry.RunReport` — it complements the
        ``faults.*`` profiler counters (which only record *non-zero*
        deltas) with exact per-ledger sums including healthy batches.
        """
        outcomes = self.outcomes
        return {
            "batches": float(len(outcomes)),
            "attempts": float(sum(o.attempts for o in outcomes)),
            "retries": float(sum(o.retries for o in outcomes)),
            "rerouted_pairs": float(sum(o.rerouted_pairs for o in outcomes)),
            "rerouted_bytes": float(sum(o.rerouted_bytes for o in outcomes)),
            "degraded_bags": float(sum(o.degraded_bags for o in outcomes)),
            "cache_served_bags": float(sum(o.cache_served_bags for o in outcomes)),
            "total_bags": float(sum(o.total_bags for o in outcomes)),
            "deadline_misses": float(sum(o.deadline_missed for o in outcomes)),
            "healthy_batches": float(sum(o.healthy for o in outcomes)),
        }

    # -- functional path ---------------------------------------------------------

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Numpy forward honouring the last timed batch's degradation.

        Unaffected bags are bit-identical to the wrapped backend; degraded
        (owner, dst) pairs are zero-filled except bags fully served from
        the fallback cache.
        """
        if self.sharded is None:
            raise ValueError("functional forward needs materialize=True weights")
        if self.base_name == "pgas":
            outputs = pgas_functional_forward(self.sharded, batch)
        else:
            outputs, _blocks = baseline_functional_forward(self.sharded, batch)
        state = self._last_state
        if state is None or (not state.degraded_pairs and not state.fully_degraded):
            return outputs
        plan = self.table_plan
        G = plan.n_devices
        bounds = minibatch_bounds(batch.batch_size, G)
        for f, t in enumerate(plan.table_configs):
            owner = plan.owner_of(t.name)
            for g in range(G):
                if g == owner:
                    continue
                if not state.fully_degraded and (owner, g) not in state.degraded_pairs:
                    continue
                out = outputs[g]
                out[:, f, :] = 0.0
                served = state.cache_served.get((g, t.name))
                if served is not None:
                    covered, pooled = served
                    if pooled is not None:
                        out[covered, f, :] = pooled[covered]
        return outputs

    def release(self) -> None:
        """Free the fallback caches' slabs back to their memory pools."""
        if self._fallback is not None:
            for cache in self._fallback:
                cache.release()
            self._fallback = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ResilientRetrieval base={self.base_name} "
            f"deadline={self.spec.deadline_ns} batches={len(self.outcomes)}>"
        )
