"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``reproduce``   regenerate the paper's tables/figures (all or one id)
``report``      write the paper-vs-measured markdown report to a file
``run``         time one workload on both backends and print the phases
``sweep``       sweep a workload knob and print speedups per point
``cachesweep``  hot-row cache hit rate / comm / speedup vs skew and capacity
``faultsweep``  serving SLOs (shed/degraded/p99/goodput) vs fault severity
``servesweep``  continuous-batching goodput vs in-flight depth K + BENCH_serving.json
``compsweep``   codec x backend wire/time/error grid + BENCH_compression.json
``chaossweep``  availability/goodput vs replication k x failures + BENCH_availability.json
``skewsweep``   online resharding vs static placement under skew + BENCH_reshard.json
``hiersweep``   flat vs hierarchical routing across node geometries + BENCH_hier.json
``critpath``    traced critical-path attribution + BENCH_critpath.json (and
                an optional regression gate against a committed baseline)
``backends``    list the registered backends with their capability flags
``plan``        capacity-aware table placement for a Criteo-like table set
``trace``       run one batch and write a chrome://tracing JSON timeline
``metrics``     pgas-vs-baseline telemetry metrics + BENCH_metrics.json

The preset names accepted by ``metrics``/``servesweep`` resolve through
:func:`repro.core.runspec.preset_runspec`, so the CLI and the library see
identical workloads.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from .bench.runner import EXPERIMENT_IDS, ExperimentRunner
from .bench.sweeps import batch_size_sweep, pooling_sweep, table_count_sweep
from .compress import CODEC_NAMES
from .core.planner import plan_table_wise
from .core.retrieval import DistributedEmbedding, available_backends, backend_spec
from .core.runspec import PRESETS
from .dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE, WorkloadConfig
from .dlrm.heterogeneous import criteo_like
from .simgpu.device import V100_SPEC
from .simgpu.trace import summarize_spans, write_chrome_trace
from .simgpu.units import to_ms

__all__ = ["main", "build_parser"]


def _workload_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--tables", type=int, default=64, help="number of embedding tables")
    p.add_argument("--rows", type=int, default=1_000_000, help="rows per table")
    p.add_argument("--dim", type=int, default=64, help="embedding dimension")
    p.add_argument("--batch", type=int, default=16_384, help="batch size")
    p.add_argument("--pooling", type=int, default=128, help="max pooling factor")
    p.add_argument("--gpus", type=int, default=2, help="simulated GPU count")
    p.add_argument("--seed", type=int, default=2024)


def _workload_from(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        num_tables=args.tables,
        rows_per_table=args.rows,
        dim=args.dim,
        batch_size=args.batch,
        max_pooling=args.pooling,
        seed=args.seed,
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    ap = argparse.ArgumentParser(
        prog="repro",
        description="PGAS-style multi-GPU embedding retrieval (SC'24 reproduction)",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    rp = sub.add_parser("reproduce", help="regenerate the paper's tables and figures")
    rp.add_argument("--batches", type=int, default=10, help="batches per measurement")
    rp.add_argument("--scale", type=float, default=1.0, help="batch-size scale factor")
    rp.add_argument("--only", choices=EXPERIMENT_IDS, default=None)

    rn = sub.add_parser("run", help="time one workload on both backends")
    _workload_args(rn)
    rn.add_argument("--batches", type=int, default=1)

    sw = sub.add_parser("sweep", help="sweep one workload knob")
    _workload_args(sw)
    sw.add_argument("knob", choices=("batch_size", "max_pooling", "num_tables"))
    sw.add_argument("values", type=float, nargs="+", help="knob values to sweep")

    cs = sub.add_parser("cachesweep", help="hot-row cache sweep (skew x capacity)")
    _workload_args(cs)
    cs.set_defaults(tables=8, rows=4096, dim=32, batch=1024, pooling=4)
    cs.add_argument("--alphas", type=float, nargs="+", default=[1.05, 1.1, 1.2],
                    help="zipf skew values")
    cs.add_argument("--capacities", type=float, nargs="+", default=[0.05, 0.1, 0.2],
                    help="cache capacity as a fraction of remote rows")
    cs.add_argument("--policy", choices=("lru", "lfu", "static-topk"), default="lru")
    cs.add_argument("--batches", type=int, default=4, help="measured batches per point")
    cs.add_argument("--base", choices=("pgas", "baseline"), default="pgas",
                    help="underlying backend to wrap")

    fs = sub.add_parser("faultsweep", help="serving SLOs vs fault severity")
    _workload_args(fs)
    fs.set_defaults(tables=8, rows=4096, dim=16, batch=512, pooling=4, gpus=4)
    fs.add_argument("--severities", type=float, nargs="+", default=[0.0, 0.3, 0.6, 0.9],
                    help="fault severities in [0, 1] (0 = healthy reference)")
    fs.add_argument("--backends", nargs="+", choices=("pgas", "baseline"),
                    default=["pgas", "baseline"], help="base backends to wrap")
    fs.add_argument("--requests", type=int, default=48, help="requests per point")
    fs.add_argument("--qps", type=float, default=50_000.0, help="offered load")
    fs.add_argument("--deadline-ms", type=float, default=2.0,
                    help="request SLO deadline (ms)")
    fs.add_argument("--emb-deadline-ms", type=float, default=0.25,
                    help="per-attempt EMB deadline driving retries (ms)")
    fs.add_argument("--queue-limit", type=int, default=512,
                    help="shed arrivals beyond this queue depth")
    fs.add_argument("--hedge-ms", type=float, default=None,
                    help="hedge batches running longer than this (ms)")

    ss = sub.add_parser("servesweep",
                        help="continuous-batching goodput sweep + BENCH_serving.json")
    ss.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    ss.add_argument("--gpus", type=int, default=2, help="simulated GPU count")
    ss.add_argument("--backends", nargs="+", default=["pgas", "baseline"],
                    help="backends to compare")
    ss.add_argument("--qps", type=float, nargs="+", default=[200_000.0],
                    help="offered arrival rates")
    ss.add_argument("--k", type=int, nargs="+", default=[1, 2],
                    help="max in-flight batches (scheduler depth) values")
    ss.add_argument("--policies", nargs="+", choices=("size", "timeout", "hybrid"),
                    default=["hybrid"], help="batch-formation policies")
    ss.add_argument("--requests", type=int, default=32, help="requests per point")
    ss.add_argument("--max-batch", type=int, default=8, help="batcher's size cap")
    ss.add_argument("--window-ms", type=float, default=0.1,
                    help="batch-formation window (ms)")
    ss.add_argument("--deadline-ms", type=float, default=None,
                    help="request SLO deadline (ms); goodput counts hits only")
    ss.add_argument("--seed", type=int, default=0)
    ss.add_argument("--output", default="BENCH_serving.json",
                    help="machine-readable artifact path ('' to skip)")

    cp = sub.add_parser("compsweep",
                        help="codec x backend compression sweep + BENCH_compression.json")
    cp.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    cp.add_argument("--gpus", type=int, default=2, help="simulated GPU count")
    cp.add_argument("--codecs", nargs="+", choices=CODEC_NAMES,
                    default=list(CODEC_NAMES), help="wire codecs to measure")
    cp.add_argument("--backends", nargs="+", choices=("pgas", "baseline"),
                    default=["pgas", "baseline"], help="base backends to wrap")
    cp.add_argument("--batches", type=int, default=2, help="batches per point")
    cp.add_argument("--batch-sizes", type=int, nargs="+", default=None,
                    help="batch sizes to sweep (default: the preset's)")
    cp.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = preset size)")
    cp.add_argument("--error-rows", type=int, default=512,
                    help="synthetic vectors per codec for the error measurement")
    cp.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")
    cp.add_argument("--output", default="BENCH_compression.json",
                    help="machine-readable artifact path ('' to skip)")

    ch = sub.add_parser("chaossweep",
                        help="replication/failover availability sweep + "
                             "BENCH_availability.json")
    ch.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    ch.add_argument("--gpus", type=int, default=4, help="simulated GPU count")
    ch.add_argument("--k", type=int, nargs="+", default=[1, 2],
                    help="replication factors to measure")
    ch.add_argument("--failures", type=int, nargs="+", default=[0, 1],
                    help="permanent device_down counts per point")
    ch.add_argument("--backends", nargs="+", choices=("pgas", "baseline"),
                    default=["pgas", "baseline"], help="base backends to wrap")
    ch.add_argument("--placement", choices=("spread", "ring"), default="spread",
                    help="replica placement policy")
    ch.add_argument("--batches", type=int, default=6,
                    help="batches per point (first is the healthy warm-up)")
    ch.add_argument("--recovery-share", type=float, default=0.25,
                    help="link bandwidth share granted to recovery streams")
    ch.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = preset size)")
    ch.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")
    ch.add_argument("--output", default="BENCH_availability.json",
                    help="machine-readable artifact path ('' to skip)")

    sk = sub.add_parser("skewsweep",
                        help="online resharding vs static placement sweep + "
                             "BENCH_reshard.json")
    sk.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    sk.add_argument("--gpus", type=int, default=4, help="simulated GPU count")
    sk.add_argument("--backends", nargs="+",
                    default=["pgas", "pgas+reshard", "baseline",
                             "baseline+reshard"],
                    help="backends to compare (mix static and +reshard)")
    sk.add_argument("--skews", type=float, nargs="+", default=[0.0, 1.05],
                    help="table traffic skew exponents (0 = uniform)")
    sk.add_argument("--batches", type=int, default=10, help="batches per point")
    sk.add_argument("--threshold", type=float, default=1.1,
                    help="planner max/mean imbalance trigger")
    sk.add_argument("--migration-share", type=float, default=0.25,
                    help="link bandwidth share granted to migration streams")
    sk.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = preset size)")
    sk.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")
    sk.add_argument("--output", default="BENCH_reshard.json",
                    help="machine-readable artifact path ('' to skip)")

    hs = sub.add_parser("hiersweep",
                        help="flat vs hierarchical routing sweep + "
                             "BENCH_hier.json")
    hs.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    hs.add_argument("--bases", nargs="+", default=["pgas", "baseline"],
                    help="base backends to route (pgas / baseline)")
    hs.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 3],
                    help="simulated node counts")
    hs.add_argument("--gpus-per-node", type=int, nargs="+", default=[1, 2, 4],
                    help="simulated GPUs per node")
    hs.add_argument("--message-bytes", type=int, nargs="+",
                    default=[32, 256, 4096],
                    help="PGAS message size / collective chunk size per point")
    hs.add_argument("--batches", type=int, default=2, help="batches per point")
    hs.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = preset size)")
    hs.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")
    hs.add_argument("--output", default="BENCH_hier.json",
                    help="machine-readable artifact path ('' to skip)")

    cr = sub.add_parser("critpath",
                        help="traced critical-path attribution + BENCH_critpath.json")
    cr.add_argument("--preset", choices=PRESETS, default="tiny",
                    help="workload preset (resolved via preset_runspec)")
    cr.add_argument("--gpus", type=int, default=2, help="simulated GPU count")
    cr.add_argument("--backends", nargs="+", default=["pgas", "baseline"],
                    help="backends to trace")
    cr.add_argument("--batches", type=int, default=2, help="batches per backend")
    cr.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = preset size)")
    cr.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")
    cr.add_argument("--output", default="BENCH_critpath.json",
                    help="machine-readable artifact path ('' to skip)")
    cr.add_argument("--gate", default=None, metavar="BASELINE_JSON",
                    help="compare against this committed artifact; exit 1 on breach")
    cr.add_argument("--gate-rel", type=float, default=0.05,
                    help="relative tolerance for the regression gate")
    cr.add_argument("--gate-abs-ns", type=float, default=1000.0,
                    help="absolute tolerance floor for the regression gate (ns)")

    sub.add_parser("backends",
                   help="list registered backends and their capability flags")

    pl = sub.add_parser("plan", help="capacity-aware table placement")
    pl.add_argument("--criteo-tables", type=int, default=26)
    pl.add_argument("--dim", type=int, default=64)
    pl.add_argument("--gpus", type=int, default=None,
                    help="force a device count (default: minimal feasible)")
    pl.add_argument("--reserve", type=float, default=0.1,
                    help="HBM fraction reserved for activations")
    pl.add_argument("--seed", type=int, default=7)

    rm = sub.add_parser("report", help="write the markdown reproduction report")
    rm.add_argument("--batches", type=int, default=10)
    rm.add_argument("--scale", type=float, default=1.0)
    rm.add_argument("--output", default="REPORT.md")

    tr = sub.add_parser("trace", help="write a chrome://tracing timeline of one batch")
    _workload_args(tr)
    tr.add_argument("--backend", choices=tuple(available_backends()), default="pgas")
    tr.add_argument("--zipf", type=float, default=None,
                    help="zipf skew for the traced batch (cached backends profit)")
    tr.add_argument("--output", default="repro_trace.json")
    tr.add_argument("--counters", action=argparse.BooleanOptionalAction, default=True,
                    help="include raw counter tracks (--no-counters for spans only)")
    tr.add_argument("--telemetry", action="store_true",
                    help="also export derived telemetry.* gauge tracks")

    mt = sub.add_parser("metrics",
                        help="pgas-vs-baseline telemetry metrics + BENCH_metrics.json")
    mt.add_argument("--preset", choices=PRESETS, default="weak",
                    help="workload preset (weak = paper §IV-A per-GPU rule)")
    mt.add_argument("--gpus", type=int, default=2, help="simulated GPU count")
    mt.add_argument("--batches", type=int, default=1, help="batches per backend")
    mt.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = paper size)")
    mt.add_argument("--backends", nargs="+", default=["pgas", "baseline"],
                    help="backends to compare")
    mt.add_argument("--bins", type=int, default=240,
                    help="sample-grid resolution for the derived gauges")
    mt.add_argument("--output", default="BENCH_metrics.json",
                    help="machine-readable artifact path ('' to skip)")
    mt.add_argument("--series", action=argparse.BooleanOptionalAction, default=True,
                    help="include per-bin gauge series in the artifact")
    mt.add_argument("--seed", type=int, default=None,
                    help="workload seed override (default: preset's)")

    return ap


def _cmd_reproduce(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(n_batches=args.batches, scale=args.scale)
    ids = [args.only] if args.only else list(EXPERIMENT_IDS)
    for eid in ids:
        print(f"== {eid} ==")
        print(runner.render(eid))
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = _workload_from(args)
    gen = SyntheticDataGenerator(cfg)
    batches = [gen.lengths_batch() for _ in range(args.batches)]
    print(f"workload: {cfg.num_tables} tables x {cfg.rows_per_table} x d{cfg.dim}, "
          f"batch {cfg.batch_size}, pooling <= {cfg.max_pooling}, {args.gpus} GPUs, "
          f"{args.batches} batches")
    from .core.baseline import PhaseTiming

    results = {}
    for backend in ("baseline", "pgas"):
        emb = DistributedEmbedding(cfg, args.gpus, backend=backend)  # type: ignore[arg-type]
        total = PhaseTiming()
        for lengths in batches:
            total.add(emb.forward_timed(lengths))
        results[backend] = total
        print(f"  {backend:9s} total {to_ms(total.total_ns):9.3f} ms  "
              f"(compute {to_ms(total.compute_ns):.3f} / comm {to_ms(total.comm_ns):.3f} "
              f"/ sync+unpack {to_ms(total.sync_unpack_ns):.3f})")
    speedup = results["baseline"].total_ns / results["pgas"].total_ns
    print(f"  PGAS speedup: {speedup:.2f}x")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    cfg = _workload_from(args)
    factory = {
        "batch_size": batch_size_sweep,
        "max_pooling": pooling_sweep,
        "num_tables": table_count_sweep,
    }[args.knob]
    sweep = factory(cfg, n_devices=args.gpus)
    print(sweep.run(args.values).render())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    workload = criteo_like(num_tables=args.criteo_tables, dim=args.dim, seed=args.seed)
    report = plan_table_wise(
        workload.table_configs(),
        n_devices=args.gpus,
        device_spec=V100_SPEC,
        reserve_fraction=args.reserve,
    )
    print(report.summary())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .bench.report_md import build_report

    runner = ExperimentRunner(n_batches=args.batches, scale=args.scale)
    text = build_report(runner)
    with open(args.output, "w") as fh:
        fh.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines, "
          f"{args.batches} batches at scale {args.scale:g})")
    return 0


def _cmd_cachesweep(args: argparse.Namespace) -> int:
    from .bench.cachesweep import run_cache_sweep

    cfg = _workload_from(args)
    result = run_cache_sweep(
        cfg,
        alphas=args.alphas,
        capacity_fractions=args.capacities,
        base=args.base,
        policy=args.policy,
        n_devices=args.gpus,
        n_batches=args.batches,
    )
    print(result.render())
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from .bench.faultsweep import run_fault_sweep
    from .simgpu.units import ms

    cfg = _workload_from(args)
    result = run_fault_sweep(
        cfg,
        severities=args.severities,
        bases=args.backends,
        n_devices=args.gpus,
        n_requests=args.requests,
        arrival_qps=args.qps,
        deadline_ns=args.deadline_ms * ms,
        emb_deadline_ns=args.emb_deadline_ms * ms,
        queue_limit=args.queue_limit,
        hedge_after_ns=args.hedge_ms * ms if args.hedge_ms is not None else None,
        seed=args.seed,
    )
    print(result.render())
    return 0


def _cmd_servesweep(args: argparse.Namespace) -> int:
    import json

    from .bench.servesweep import run_serve_sweep, validate_servesweep_json
    from .simgpu.units import ms

    sweep = run_serve_sweep(
        args.preset,
        n_devices=args.gpus,
        backends=args.backends,
        qps=args.qps,
        max_in_flight=args.k,
        policies=args.policies,
        n_requests=args.requests,
        max_batch=args.max_batch,
        batch_window_ns=args.window_ms * ms,
        deadline_ns=args.deadline_ms * ms if args.deadline_ms is not None else None,
        seed=args.seed,
    )
    print(sweep.render())
    if args.output:
        sweep.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_servesweep_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(sweep.points)} points)")
    return 0


def _cmd_compsweep(args: argparse.Namespace) -> int:
    import json

    from .bench.compsweep import run_comp_sweep, validate_compsweep_json

    sweep = run_comp_sweep(
        args.preset,
        n_devices=args.gpus,
        codecs=args.codecs,
        bases=args.backends,
        batch_sizes=args.batch_sizes,
        n_batches=args.batches,
        scale=args.scale,
        error_rows=args.error_rows,
        seed=args.seed,
    )
    print(sweep.render())
    if args.output:
        sweep.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_compsweep_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(sweep.points)} points)")
    return 0


def _cmd_chaossweep(args: argparse.Namespace) -> int:
    import json

    from .bench.chaossweep import run_chaos_sweep, validate_chaossweep_json

    sweep = run_chaos_sweep(
        args.preset,
        n_devices=args.gpus,
        ks=args.k,
        failure_counts=args.failures,
        bases=args.backends,
        placement=args.placement,
        n_batches=args.batches,
        recovery_bandwidth_share=args.recovery_share,
        scale=args.scale,
        seed=args.seed,
    )
    print(sweep.render())
    if args.output:
        sweep.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_chaossweep_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(sweep.points)} points)")
    return 0


def _cmd_skewsweep(args: argparse.Namespace) -> int:
    import json

    from .bench.skewsweep import run_skew_sweep, validate_skewsweep_json
    from .reshard import ReshardSpec

    spec = ReshardSpec(
        window_batches=max(4, args.batches // 2),
        min_batches=2,
        check_interval_batches=2,
        imbalance_threshold=args.threshold,
        migration_bandwidth_share=args.migration_share,
    )
    sweep = run_skew_sweep(
        args.preset,
        n_devices=args.gpus,
        backends=args.backends,
        skews=args.skews,
        n_batches=args.batches,
        reshard_spec=spec,
        scale=args.scale,
        seed=args.seed,
    )
    print(sweep.render())
    if args.output:
        sweep.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_skewsweep_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(sweep.points)} points)")
    return 0


def _cmd_hiersweep(args: argparse.Namespace) -> int:
    import json

    from .bench.hiersweep import run_hiersweep, validate_hiersweep_json

    sweep = run_hiersweep(
        args.preset,
        bases=args.bases,
        nodes=args.nodes,
        devices_per_node=args.gpus_per_node,
        message_sizes=args.message_bytes,
        n_batches=args.batches,
        scale=args.scale,
        seed=args.seed,
    )
    print(sweep.render())
    if args.output:
        sweep.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_hiersweep_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(sweep.points)} points)")
    return 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    import json

    from .bench.critpath import run_critpath, validate_critpath_json

    result = run_critpath(
        args.preset,
        n_devices=args.gpus,
        backends=args.backends,
        n_batches=args.batches,
        scale=args.scale,
        seed=args.seed,
    )
    print(result.render())
    if args.output:
        result.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_critpath_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, {len(result.points)} points)")
    if args.gate:
        from .obs.regress import Tolerance, compare_critpath

        with open(args.gate) as fh:
            baseline = json.load(fh)
        gate = compare_critpath(
            baseline,
            result.as_dict(),
            tolerance=Tolerance(rel=args.gate_rel, abs_ns=args.gate_abs_ns),
        )
        print(gate.render())
        if not gate.passed:
            return 1
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from .bench.reporting import format_table

    rows = []
    for info in available_backends():
        flags = [info.base]
        if info.cached:
            flags.append("cache")
        if info.resilient:
            flags.append("resilient")
        if info.compressed:
            flags.append("compress")
        if info.replicated:
            flags.append("replication")
        if info.resharded:
            flags.append("reshard")
        if info.hierarchical:
            flags.append("hier")
        if info.requires_indices:
            flags.append("indices")
        if info.traceable:
            flags.append("traceable")
        if not info.functional:
            flags.append("timed-only")
        rows.append([str(info), "+".join(flags), info.description])
    print(format_table(["backend", "flags", "description"], rows))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cfg = _workload_from(args)
    if args.zipf is not None:
        cfg = dataclasses.replace(cfg, index_distribution="zipf", zipf_alpha=args.zipf)
    emb = DistributedEmbedding(cfg, args.gpus, backend=args.backend)
    gen = SyntheticDataGenerator(cfg)
    if backend_spec(args.backend).requires_indices:
        t = emb.forward(gen.sparse_batch()).timing
    else:
        t = emb.forward_timed(gen.lengths_batch())
    if args.telemetry:
        from .telemetry import write_chrome_trace_with_telemetry

        write_chrome_trace_with_telemetry(
            emb.cluster.profiler, args.output,
            n_devices=args.gpus, counters=args.counters,
        )
    else:
        write_chrome_trace(emb.cluster.profiler, args.output, counters=args.counters)
    print(f"simulated {to_ms(t.total_ns):.3f} ms ({args.backend}, {args.gpus} GPUs)")
    print(summarize_spans(emb.cluster.profiler))
    print(f"trace written to {args.output} (open in chrome://tracing; "
          f"fault windows appear as instant events)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .bench.telemetry import run_metrics, validate_metrics_json

    comparison = run_metrics(
        args.preset,
        n_devices=args.gpus,
        backends=args.backends,
        n_batches=args.batches,
        scale=args.scale,
        n_bins=args.bins,
        include_series=args.series,
        seed=args.seed,
    )
    print(comparison.render())
    if args.output:
        comparison.write_json(args.output)
        # Self-check: the artifact we just wrote must round-trip the schema.
        with open(args.output) as fh:
            validate_metrics_json(json.load(fh))
        print(f"wrote {args.output} (schema-valid, "
              f"{len(comparison.reports)} backend reports)")
    return 0


_COMMANDS = {
    "reproduce": _cmd_reproduce,
    "report": _cmd_report,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "cachesweep": _cmd_cachesweep,
    "faultsweep": _cmd_faultsweep,
    "servesweep": _cmd_servesweep,
    "compsweep": _cmd_compsweep,
    "chaossweep": _cmd_chaossweep,
    "skewsweep": _cmd_skewsweep,
    "hiersweep": _cmd_hiersweep,
    "critpath": _cmd_critpath,
    "backends": _cmd_backends,
    "plan": _cmd_plan,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
