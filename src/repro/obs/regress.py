"""Performance regression gate over committed ``BENCH_critpath.json`` artifacts.

CI commits a baseline artifact; every build re-runs the same preset and
compares the fresh numbers against the baseline with per-metric tolerances.
A breach fails the build *and* explains itself via the critical-path delta:
which categories on the path grew, by how much — so "the run got 8% slower"
reads as "all-to-all on the critical path grew 1.2 ms".

The gate is one-sided by design: getting faster never fails.  Metrics are
matched per benchmark point (keyed by backend); a point present in the
baseline but missing from the fresh run is itself a breach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["Tolerance", "MetricCheck", "GateResult", "compare_critpath"]


@dataclass(frozen=True)
class Tolerance:
    """Allowed one-sided growth: ``fresh <= base + max(rel * |base|, abs_ns)``."""

    rel: float = 0.05
    abs_ns: float = 1000.0

    def __post_init__(self) -> None:
        if self.rel < 0:
            raise ValueError(f"Tolerance.rel must be >= 0, got {self.rel}")
        if self.abs_ns < 0:
            raise ValueError(f"Tolerance.abs_ns must be >= 0, got {self.abs_ns}")

    def bound(self, base: float) -> float:
        return base + max(self.rel * abs(base), self.abs_ns)


@dataclass(frozen=True)
class MetricCheck:
    """Outcome of one tracked metric comparison."""

    point: str  # benchmark point key, e.g. "pgas"
    metric: str  # e.g. "wall_ns" or "path.comm_ns"
    base: float
    fresh: float
    bound: float

    @property
    def breached(self) -> bool:
        return self.fresh > self.bound

    @property
    def delta(self) -> float:
        return self.fresh - self.base


@dataclass
class GateResult:
    """All checks for one artifact pair, plus breach explanations."""

    checks: List[MetricCheck] = field(default_factory=list)
    missing_points: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing_points and not any(c.breached for c in self.checks)

    @property
    def breaches(self) -> List[MetricCheck]:
        return [c for c in self.checks if c.breached]

    def render(self) -> str:
        """Human-readable verdict; breaches explained via path-category deltas."""
        lines: List[str] = []
        verdict = "PASS" if self.passed else "FAIL"
        lines.append(
            f"regression gate: {verdict} "
            f"({len(self.checks)} metrics checked, {len(self.breaches)} breached"
            + (f", {len(self.missing_points)} points missing" if self.missing_points else "")
            + ")"
        )
        for point in self.missing_points:
            lines.append(f"  MISSING point {point!r}: in baseline but not in fresh run")
        by_point: Dict[str, List[MetricCheck]] = {}
        for c in self.checks:
            by_point.setdefault(c.point, []).append(c)
        for point, checks in sorted(by_point.items()):
            bad = [c for c in checks if c.breached]
            if not bad:
                continue
            lines.append(f"  point {point!r}:")
            for c in bad:
                lines.append(
                    f"    BREACH {c.metric}: {c.base:.0f} -> {c.fresh:.0f} ns "
                    f"(+{c.delta:.0f}, bound {c.bound:.0f})"
                )
            # Explain via the critical-path delta: category growth sorted
            # largest-first tells *where* the extra time landed.
            cat_deltas = sorted(
                (
                    (c.metric, c.delta)
                    for c in checks
                    if c.metric.startswith("path.") and c.delta > 0
                ),
                key=lambda kv: -kv[1],
            )
            if cat_deltas:
                grew = ", ".join(
                    f"{m[len('path.'):-len('_ns')]} +{d:.0f} ns" for m, d in cat_deltas
                )
                lines.append(f"    critical-path delta: {grew}")
        return "\n".join(lines)


def _tracked_metrics(point: Dict[str, Any]) -> Dict[str, float]:
    """Flatten one artifact point into its tracked scalar metrics."""
    out: Dict[str, float] = {"wall_ns": float(point["wall_ns"])}
    for cat, ns in point.get("by_category", {}).items():
        out[f"path.{cat}_ns"] = float(ns)
    return out


def compare_critpath(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    *,
    tolerance: Tolerance = Tolerance(),
) -> GateResult:
    """Gate a fresh ``BENCH_critpath.json`` dict against the committed baseline.

    Tracked metrics per point: end-to-end ``wall_ns`` plus each
    critical-path category (``path.<cat>_ns``).  A category present in the
    baseline but absent fresh counts as 0 (it left the path — fine); a new
    fresh category is checked against a 0 baseline, so it only fails when it
    exceeds the absolute floor.
    """
    base_points = {p["backend"]: p for p in baseline.get("points", [])}
    fresh_points = {p["backend"]: p for p in fresh.get("points", [])}

    result = GateResult()
    for key in sorted(base_points):
        if key not in fresh_points:
            result.missing_points.append(key)
            continue
        base_m = _tracked_metrics(base_points[key])
        fresh_m = _tracked_metrics(fresh_points[key])
        for metric in sorted(set(base_m) | set(fresh_m)):
            b = base_m.get(metric, 0.0)
            f = fresh_m.get(metric, 0.0)
            result.checks.append(
                MetricCheck(point=key, metric=metric, base=b, fresh=f,
                            bound=tolerance.bound(b))
            )
    return result
