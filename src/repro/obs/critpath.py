"""Critical-path extraction over recorded profiler spans.

The simulator's profiler records *what ran when*; this module reconstructs
*what bounded the run*.  The dependency DAG of the discrete-event engine is
implicit in span timestamps: a batch (or a whole run) finishes at the end of
its last span, which could not have started before the work preceding it.
We therefore extract the critical path by a **backward tiling** of the
window:

1. Start a cursor at the window's end ``t1``.
2. Among spans covering the cursor (``t_start < cursor <= t_end``), pick
   the one with the *earliest start* — the longest backward jump, i.e. the
   dependency that kept the timeline busy up to the cursor.  Attribute the
   segment ``[t_start, cursor]`` to it and move the cursor to its start.
3. If nothing covers the cursor, the timeline was idle: emit an ``idle``
   segment back to the latest earlier span end (dependency stall, queueing,
   or arrival gaps) and continue.
4. Stop at ``t0``.

Because consecutive segments share endpoints, the tiling is *exact*: segment
durations sum to ``t1 - t0`` with no float residue beyond summation order
(we use ``math.fsum``).  Per-span **slack** — duration not on the path — is
non-negative by construction since each span is attributed at most one
sub-interval of itself.

Tie-breaking rules (documented in DESIGN.md §13):

* ``serve`` spans are *envelopes* — they cover a whole batch by definition
  and would absorb the entire path, so they bound the window but never
  appear on the path.
* ``kernel`` and ``link`` spans are *detail* — fine-grained duplicates of
  the phase spans above them (a fused kernel span and the ``pgas_fused``
  phase span share a window).  Phase spans win ties so the path reads as
  phases, with detail spans only surfacing where no phase covers.
* Remaining ties fall back to a canonical order — spans sorted by
  ``(t_start, t_end, name, device_id, category)`` — which makes the path
  invariant under re-ordering of identically-timestamped spans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..simgpu.profiler import Profiler, Span

__all__ = [
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "critical_path_report",
    "DETAIL_CATEGORIES",
    "ENVELOPE_CATEGORIES",
]

# Fine-grained spans that duplicate the phase span covering the same window;
# they lose ties so the path is phrased in terms of phases.
DETAIL_CATEGORIES = frozenset({"kernel", "link"})

# Container spans that cover an entire batch by construction; they define
# windows but are excluded from path construction outright.
ENVELOPE_CATEGORIES = frozenset({"serve"})

_IDLE = "idle"


@dataclass(frozen=True)
class PathSegment:
    """One tile of the critical path: a sub-interval attributed to a span."""

    t_start: float
    t_end: float
    name: str
    category: str
    device_id: int
    span_index: Optional[int]  # canonical index into CriticalPath.spans; None = idle gap

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class CriticalPath:
    """The extracted path over one window plus its attribution."""

    t0: float
    t1: float
    segments: Tuple[PathSegment, ...]
    spans: Tuple[Span, ...]  # canonical-ordered spans considered (non-envelope)

    @property
    def wall_ns(self) -> float:
        """End-to-end wall of the window."""
        return self.t1 - self.t0

    @property
    def path_ns(self) -> float:
        """Sum of segment durations — equals ``wall_ns`` exactly by tiling."""
        return math.fsum(seg.duration for seg in self.segments)

    def by_category(self) -> Dict[str, float]:
        """Path time attributed to each category (idle gaps under ``idle``)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            out[seg.category] = out.get(seg.category, 0.0) + seg.duration
        return out

    def by_device(self) -> Dict[str, float]:
        """Path time attributed to each device (``host`` for device -1)."""
        out: Dict[str, float] = {}
        for seg in self.segments:
            key = f"dev{seg.device_id}" if seg.device_id >= 0 else "host"
            out[key] = out.get(key, 0.0) + seg.duration
        return out

    def attributed(self) -> List[float]:
        """Per-span time on the path, indexed like :attr:`spans`."""
        out = [0.0] * len(self.spans)
        for seg in self.segments:
            if seg.span_index is not None:
                out[seg.span_index] += seg.duration
        return out

    def slack(self) -> List[float]:
        """Per-span slack (duration off the path), >= 0 by construction."""
        return [s.duration - a for s, a in zip(self.spans, self.attributed())]

    def whatif(self) -> Dict[str, float]:
        """Estimated wall with one category's path contribution removed.

        A first-order headroom number: e.g. ``zero_comm_wall_ns`` is the
        run time if every all-to-all on the path cost nothing (the paper's
        "fast as the hardware allows" ceiling).  First-order because work
        hidden *behind* the removed category could surface a new path.
        """
        by_cat = self.by_category()
        return {
            f"zero_{cat}_wall_ns": self.wall_ns - ns
            for cat, ns in sorted(by_cat.items())
            if cat != _IDLE
        }


def _canonical(spans: Sequence[Span]) -> List[Span]:
    """Deterministic span order independent of recording order."""
    return sorted(
        spans, key=lambda s: (s.t_start, s.t_end, s.name, s.device_id, s.category)
    )


def critical_path(
    spans: Sequence[Span],
    *,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> CriticalPath:
    """Extract the critical path over ``[t0, t1]`` from recorded spans.

    With ``t0``/``t1`` omitted, the window is the extent of the spans
    themselves (earliest start to latest end, envelopes included so a
    ``serve`` span still bounds its batch).  Envelope-category spans are
    excluded from path construction; zero-width spans can never cover a
    cursor and are skipped naturally.
    """
    if not spans:
        if t0 is None or t1 is None:
            raise ValueError("critical_path needs spans or an explicit window")
    lo = min((s.t_start for s in spans), default=None)
    hi = max((s.t_end for s in spans), default=None)
    t0 = lo if t0 is None else t0
    t1 = hi if t1 is None else t1
    if t1 < t0:
        raise ValueError(f"critical-path window ends before it starts ({t0}..{t1})")

    candidates = _canonical([s for s in spans if s.category not in ENVELOPE_CATEGORIES])

    segments: List[PathSegment] = []
    cursor = t1
    while cursor > t0:
        best_idx: Optional[int] = None
        best_key: Optional[Tuple[float, int, int]] = None
        for idx, s in enumerate(candidates):
            if s.t_start < cursor <= s.t_end:
                rank = 1 if s.category in DETAIL_CATEGORIES else 0
                key = (s.t_start, rank, idx)
                if best_key is None or key < best_key:
                    best_key, best_idx = key, idx
        if best_idx is not None:
            s = candidates[best_idx]
            seg_start = max(s.t_start, t0)
            segments.append(
                PathSegment(seg_start, cursor, s.name, s.category, s.device_id, best_idx)
            )
            cursor = seg_start
        else:
            # Idle gap: nothing covers the cursor.  Walk back to the latest
            # span end strictly before it (or the window start).
            prev_end = max(
                (s.t_end for s in candidates if s.t_end < cursor), default=t0
            )
            gap_start = max(prev_end, t0)
            segments.append(PathSegment(gap_start, cursor, _IDLE, _IDLE, -1, None))
            cursor = gap_start

    segments.reverse()
    return CriticalPath(t0=t0, t1=t1, segments=tuple(segments), spans=tuple(candidates))


def _path_summary(cp: CriticalPath) -> Dict[str, Any]:
    slacks = cp.slack()
    return {
        "wall_ns": cp.wall_ns,
        "path_ns": cp.path_ns,
        "n_segments": len(cp.segments),
        "n_spans": len(cp.spans),
        "by_category": cp.by_category(),
        "by_device": cp.by_device(),
        "slack": {
            "total_ns": math.fsum(slacks),
            "min_ns": min(slacks, default=0.0),
            "max_ns": max(slacks, default=0.0),
        },
        "whatif": cp.whatif(),
    }


def critical_path_report(profiler: Profiler) -> Dict[str, Any]:
    """Build the ``critical_path`` section of a RunReport (schema v4).

    Run-level path over all spans, plus a per-batch breakdown for every
    trace context seen (empty ``batches`` when tracing was off — the
    run-level path is still meaningful without trace refs).
    """
    if not profiler.spans:
        return {}
    run = _path_summary(critical_path(profiler.spans))

    groups: Dict[Tuple[int, int], List[Span]] = {}
    for s in profiler.spans:
        if s.trace is not None:
            groups.setdefault((s.trace.trace_id, s.trace.batch_id), []).append(s)

    batches: List[Dict[str, Any]] = []
    for (trace_id, batch_id) in sorted(groups):
        cp = critical_path(groups[(trace_id, batch_id)])
        batches.append(
            {
                "trace_id": trace_id,
                "batch_id": batch_id,
                "wall_ns": cp.wall_ns,
                "path_ns": cp.path_ns,
                "n_segments": len(cp.segments),
                "by_category": cp.by_category(),
            }
        )

    run["batches"] = batches
    return run
