"""Observability layer: trace context, critical-path analysis, regression gate.

Three pieces, built entirely on top of the existing profiler (no engine
changes):

* :mod:`repro.obs.context` — :class:`TraceSpec` and the two propagation
  primitives (``trace_scope`` for synchronous runs, ``traced`` for
  interleaved serving generators).
* :mod:`repro.obs.critpath` — backward-tiling critical-path extraction:
  exact wall attribution to phases/devices, per-span slack, what-if
  headroom, per-batch paths via trace refs.
* :mod:`repro.obs.regress` — the perf regression gate comparing a fresh
  ``BENCH_critpath.json`` against the committed baseline with per-metric
  tolerances, explaining breaches via critical-path deltas.
"""

from .context import TraceSpec, trace_scope, traced
from .critpath import (
    CriticalPath,
    PathSegment,
    critical_path,
    critical_path_report,
)
from .regress import GateResult, MetricCheck, Tolerance, compare_critpath

__all__ = [
    "TraceSpec",
    "trace_scope",
    "traced",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "critical_path_report",
    "GateResult",
    "MetricCheck",
    "Tolerance",
    "compare_critpath",
]
