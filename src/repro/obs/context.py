"""Trace context propagation for requests and dispatched batches.

The simulator already records spans into one shared
:class:`~repro.simgpu.profiler.Profiler`; what it lacked was *attribution* —
which request or batch a span belongs to.  This module adds it without
touching the engine:

* :class:`TraceSpec` — the user-facing switch.  Attach one to a
  :class:`~repro.core.runspec.RunSpec` (or pass ``obs=`` to
  ``DistributedEmbedding`` / ``DLRMInferencePipeline``) and every forward
  call / dispatched serving batch gets a :class:`~repro.simgpu.profiler.TraceRef`.
* :func:`trace_scope` — context manager that sets ``profiler.active_trace``
  for the dynamic extent of a block.  Used around synchronous
  ``cluster.run(...)`` calls, where *everything* the engine executes (kernel
  waves, link transfers, phase spans) belongs to the one in-flight batch.
* :func:`traced` — generator wrapper that re-arms the trace ref around every
  ``send``/``throw`` into a process generator.  Used for serving, where
  multiple batches interleave on one engine: only work performed inside the
  batch's own generator frames is attributed, and spans recorded from engine
  callbacks (shared links, device streams) stay unattributed by design —
  they can serve several batches at once.

Zero overhead when disabled: with ``obs`` off nothing installs a scope or a
wrapper, ``active_trace`` stays ``None``, and every recorded span is
bit-identical to the pre-observability repo.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Generator, Iterator, Optional

from ..simgpu.profiler import Profiler, TraceRef

__all__ = ["TraceSpec", "trace_scope", "traced"]


@dataclass(frozen=True)
class TraceSpec:
    """Observability configuration for a run.

    ``enabled``
        Master switch.  ``TraceSpec(enabled=False)`` is configured-but-off:
        the run behaves bit-identically to one with no spec at all.
    ``trace_id``
        Identifier for this run's trace; batches within the run are
        numbered from 0.  Distinct concurrent runs can pick distinct ids so
        merged traces stay disambiguated.
    """

    enabled: bool = True
    trace_id: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ValueError(f"TraceSpec.enabled must be a bool, got {self.enabled!r}")
        if not isinstance(self.trace_id, int) or isinstance(self.trace_id, bool):
            raise ValueError(f"TraceSpec.trace_id must be an int, got {self.trace_id!r}")
        if self.trace_id < 0:
            raise ValueError(f"TraceSpec.trace_id must be >= 0, got {self.trace_id}")


@contextmanager
def trace_scope(profiler: Optional[Profiler], ref: Optional[TraceRef]) -> Iterator[None]:
    """Set ``profiler.active_trace = ref`` for the duration of the block.

    Restores the previous context on exit (scopes nest).  A ``None``
    profiler or ref makes this a no-op, so callers don't need to branch.
    """
    if profiler is None or ref is None:
        yield
        return
    prev = profiler.active_trace
    profiler.active_trace = ref
    try:
        yield
    finally:
        profiler.active_trace = prev


def traced(
    gen: Generator, profiler: Optional[Profiler], ref: Optional[TraceRef]
) -> Generator:
    """Wrap a process generator so its frames run under ``ref``.

    The simulation engine drives process generators with ``send``/``throw``
    from scheduled callbacks, so a plain ``with trace_scope(...)`` around the
    *launch* would leak the context to unrelated work (or lose it entirely).
    This wrapper re-arms ``active_trace`` around each resumption and restores
    the previous value before yielding control back to the engine — several
    concurrently traced batches therefore never see each other's context.
    """
    if profiler is None or ref is None:
        return gen

    def _traced() -> Generator:
        send_value = None
        throw_exc: Optional[BaseException] = None
        while True:
            prev = profiler.active_trace
            profiler.active_trace = ref
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    item = gen.throw(exc)
                else:
                    item = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            finally:
                profiler.active_trace = prev
            try:
                send_value = yield item
            except BaseException as exc:  # forwarded into gen on next loop
                send_value = None
                throw_exc = exc

    return _traced()
