"""Hierarchy sweep: flat vs. topology-aware routing across node geometries.

For each (base backend, nodes, devices-per-node, message size) grid point
the sweep runs the *same* batch stream twice on identical fresh
multi-node clusters — once flat, once through the ``"+hier"`` backend —
and records wall time, inter-node NIC message counts and wire bytes, and
the ``hier.*`` staging counters.  Functional outputs are bit-identical by
construction (routing changes timing only), so the artifact compares the
communication schedules and nothing else.

``message_rate_bound`` marks the points where the NIC's per-message
descriptor cost dominates its wire time *even against flat routing's
``dpn²``-way parallel point-to-point streams*:

    ``per_message_ns >= dpn² * message_wire_bytes / nic_bandwidth``

Flat routing spreads one node pair's traffic over ``dpn²`` simulated
links, shrinking aggregate wire time per message by ``dpn²``, while the
descriptor cost does not parallelize away — so when the inequality holds
the message count is what the NIC is selling, and coalescing must win.
(The baseline's derated chunks carry a 512-byte header plus the ~5.3×
efficiency charge as wire, so the predicate is effectively never true for
it on this fabric; the PGAS points at small message sizes are where the
bound bites.)

``write_json`` emits ``BENCH_hier.json``; :func:`validate_hiersweep_json`
is the self-check, enforcing the invariants the artifact exists to
witness: hierarchical routing never increases the inter-node message
count (strictly lowers it whenever more than one GPU per node sends
off-node), degenerate geometries (``devices_per_node == 1`` or a single
node) recover flat routing exactly, and every message-rate-bound point
shows a wall-time win.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from ..comm.collective import CollectiveSpec
from ..comm.hier import HierSpec, inter_node_message_count, inter_node_wire_bytes
from ..comm.pgas import PGASSpec
from ..core.factory import build_backend
from ..core.runspec import RunSpec
from ..dlrm.data import SyntheticDataGenerator
from ..simgpu.cluster import multinode
from ..simgpu.interconnect import NIC_SPEC
from ..simgpu.units import to_ms
from .reporting import format_table
from .runner import scaled_config
from .telemetry import preset_workload
from .validate import check_artifact, check_point

__all__ = [
    "HierSweepPoint",
    "HierSweepResult",
    "run_hiersweep",
    "validate_hiersweep_json",
]

_BASES = ("pgas", "baseline")


def _message_wire_bytes(base: str, message_bytes: int,
                        collective: CollectiveSpec, pgas: PGASSpec) -> float:
    """Wire bytes one flat inter-node message carries, headers included.

    The baseline charges its protocol inefficiency as extra header on the
    wire, so a chunk of ``message_bytes`` costs ``message_bytes /
    bandwidth_efficiency + per_chunk_header_bytes``; a PGAS put message
    costs its payload plus the fixed put header.
    """
    if base == "baseline":
        extra = int(message_bytes * (1.0 / collective.bandwidth_efficiency - 1.0))
        return float(message_bytes + extra + collective.per_chunk_header_bytes)
    return float(message_bytes + pgas.header_bytes)


def _rate_bound(point: Dict[str, Any]) -> bool:
    """The message-rate-bound predicate, from a point's own fields."""
    dpn = point["devices_per_node"]
    if point["n_nodes"] <= 1 or dpn <= 1:
        return False
    wire_time = dpn * dpn * point["message_wire_bytes"] / point["nic_bandwidth"]
    return point["nic_per_message_ns"] >= wire_time


@dataclass(frozen=True)
class HierSweepPoint:
    """One (backend, geometry, message size) flat-vs-hier measurement."""

    backend: str  #: base backend ("pgas" or "baseline")
    n_nodes: int
    devices_per_node: int
    message_bytes: int  #: PGAS put message size / collective chunk size
    n_batches: int
    flat_total_ns: float
    hier_total_ns: float
    flat_inter_messages: int  #: NIC messages, flat routing
    hier_inter_messages: int  #: NIC messages, hierarchical routing
    flat_inter_bytes: float
    hier_inter_bytes: float
    hier_nic_transfers: float  #: coalesced leader->leader transfers
    hier_fwd_bytes: float  #: intra-node gather/forward traffic
    hier_scatter_bytes: float  #: far-side leader->destination traffic
    nic_bandwidth: float  #: bytes/ns of the inter-node links
    nic_per_message_ns: float  #: per-message descriptor cost
    message_wire_bytes: float  #: wire bytes of one flat NIC message
    message_rate_bound: bool

    @property
    def speedup(self) -> float:
        """Flat wall time over hierarchical wall time (> 1 = hier wins)."""
        return self.flat_total_ns / self.hier_total_ns

    @property
    def message_reduction(self) -> float:
        """Fractional drop in inter-node NIC messages (0 = none)."""
        if self.flat_inter_messages <= 0:
            return 0.0
        return 1.0 - self.hier_inter_messages / self.flat_inter_messages

    def as_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["speedup"] = self.speedup
        payload["message_reduction"] = self.message_reduction
        return payload


@dataclass
class HierSweepResult:
    """A finished hierarchy sweep."""

    preset: str
    n_batches: int
    scale: float = 1.0  #: batch-size scale factor the sweep ran at
    points: List[HierSweepPoint] = field(default_factory=list)

    def point(self, backend: str, n_nodes: int, devices_per_node: int,
              message_bytes: int) -> HierSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if (p.backend == backend and p.n_nodes == n_nodes
                    and p.devices_per_node == devices_per_node
                    and p.message_bytes == message_bytes):
                return p
        raise KeyError(
            f"no point ({backend}, {n_nodes}x{devices_per_node}, "
            f"msg={message_bytes})"
        )

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.backend,
                    f"{p.n_nodes}x{p.devices_per_node}",
                    f"{p.message_bytes}",
                    f"{to_ms(p.flat_total_ns):.3f}",
                    f"{to_ms(p.hier_total_ns):.3f}",
                    f"{p.speedup:.3f}x",
                    f"{p.flat_inter_messages}",
                    f"{p.hier_inter_messages}",
                    f"{100.0 * p.message_reduction:.1f}%",
                    "yes" if p.message_rate_bound else "-",
                ]
            )
        title = (
            f"[hier sweep: {self.preset} preset, "
            f"{self.n_batches} batches/point]"
        )
        return title + "\n" + format_table(
            [
                "backend",
                "nodes",
                "msg (B)",
                "flat (ms)",
                "hier (ms)",
                "speedup",
                "flat msgs",
                "hier msgs",
                "reduction",
                "rate-bound",
            ],
            rows,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_hier.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_batches": self.n_batches,
            "scale": self.scale,
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


_POINT_KEYS = (
    "backend", "n_nodes", "devices_per_node", "message_bytes", "n_batches",
    "flat_total_ns", "hier_total_ns", "flat_inter_messages",
    "hier_inter_messages", "flat_inter_bytes", "hier_inter_bytes",
    "hier_nic_transfers", "hier_fwd_bytes", "hier_scatter_bytes",
    "nic_bandwidth", "nic_per_message_ns", "message_wire_bytes",
    "message_rate_bound", "speedup", "message_reduction",
)


def validate_hiersweep_json(data: Any) -> None:
    """Validate a ``BENCH_hier.json`` payload (raises ``ValueError``).

    Beyond shape, this enforces the routing invariants the artifact
    exists to pin:

    * hierarchical routing never *increases* the inter-node message
      count or wire volume, and strictly lowers the message count
      whenever more than one GPU per node sends off-node;
    * degenerate geometries (``devices_per_node == 1`` or a single node)
      recover flat routing exactly — identical wall time and identical
      NIC traffic;
    * the stored ``message_rate_bound`` flag matches the predicate
      recomputed from the point's own NIC parameters, and every
      rate-bound point shows a hierarchical wall-time win.
    """
    points = check_artifact(
        data,
        kind="hier",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_batches"),
    )
    for i, point in enumerate(points):
        check_point(point, i, _POINT_KEYS)
        label = (
            f"point {i} ({point['backend']}, "
            f"{point['n_nodes']}x{point['devices_per_node']}, "
            f"msg={point['message_bytes']})"
        )
        if point["backend"] not in _BASES:
            raise ValueError(f"{label}: unknown base backend")
        for key in ("flat_total_ns", "hier_total_ns"):
            if not math.isfinite(point[key]) or point[key] <= 0:
                raise ValueError(f"{label}: degenerate timing in {key!r}")
        for key in ("flat_inter_messages", "hier_inter_messages",
                    "flat_inter_bytes", "hier_inter_bytes"):
            if point[key] < 0:
                raise ValueError(f"{label}: negative traffic in {key!r}")
        multi_node = point["n_nodes"] > 1
        multi_gpu = point["devices_per_node"] > 1
        if point["hier_inter_messages"] > point["flat_inter_messages"]:
            raise ValueError(
                f"{label}: hierarchy increased inter-node messages "
                f"({point['flat_inter_messages']} -> "
                f"{point['hier_inter_messages']})"
            )
        if point["hier_inter_bytes"] > point["flat_inter_bytes"]:
            raise ValueError(
                f"{label}: hierarchy increased inter-node wire bytes"
            )
        if multi_node and multi_gpu:
            if point["hier_inter_messages"] >= point["flat_inter_messages"]:
                raise ValueError(
                    f"{label}: expected a strict inter-node message "
                    f"reduction with {point['devices_per_node']} GPUs/node"
                )
            if point["hier_nic_transfers"] <= 0:
                raise ValueError(f"{label}: no coalesced NIC transfers ran")
        else:
            # Degenerate geometry: the hierarchy must be a perfect no-op.
            if point["hier_total_ns"] != point["flat_total_ns"]:
                raise ValueError(
                    f"{label}: degenerate geometry changed wall time "
                    f"({point['flat_total_ns']} != {point['hier_total_ns']})"
                )
            if point["hier_inter_messages"] != point["flat_inter_messages"]:
                raise ValueError(
                    f"{label}: degenerate geometry changed NIC traffic"
                )
            if point["hier_nic_transfers"] or point["hier_fwd_bytes"]:
                raise ValueError(
                    f"{label}: degenerate geometry staged traffic"
                )
        if not multi_node:
            if point["flat_inter_messages"] or point["flat_inter_bytes"]:
                raise ValueError(f"{label}: single node carried NIC traffic")
        expected_bound = _rate_bound(point)
        if bool(point["message_rate_bound"]) != expected_bound:
            raise ValueError(
                f"{label}: message_rate_bound flag does not match the "
                f"predicate recomputed from the point's NIC parameters"
            )
        if expected_bound and point["hier_total_ns"] >= point["flat_total_ns"]:
            raise ValueError(
                f"{label}: message-rate-bound point shows no wall-time win "
                f"({point['flat_total_ns']} -> {point['hier_total_ns']})"
            )


def run_hiersweep(
    preset: str = "tiny",
    *,
    bases: Sequence[str] = _BASES,
    nodes: Sequence[int] = (1, 2, 3),
    devices_per_node: Sequence[int] = (1, 2, 4),
    message_sizes: Sequence[int] = (32, 256, 4096),
    n_batches: int = 2,
    scale: float = 1.0,
    seed: int | None = None,
) -> HierSweepResult:
    """Measure every (backend, geometry, message size) grid point.

    Each point builds two embeddings on identical fresh
    :func:`~repro.simgpu.cluster.multinode` clusters and replays the same
    re-seeded batch stream through each, so the flat and hierarchical
    columns compare the communication schedule and nothing else.
    ``message_sizes`` maps to ``PGASSpec(message_bytes=...)`` for the
    PGAS base and ``CollectiveSpec(chunk_bytes=...)`` for the baseline.
    """
    for base in bases:
        if base not in _BASES:
            raise ValueError(f"unknown base backend {base!r}")
    if not nodes or not devices_per_node or not message_sizes:
        raise ValueError("every sweep axis needs at least one value")
    if n_batches < 1:
        raise ValueError("need at least one batch per point")

    sweep = HierSweepResult(preset=preset, n_batches=n_batches, scale=scale)
    for base in bases:
        for n_nodes in nodes:
            for dpn in devices_per_node:
                n_devices = n_nodes * dpn
                if n_devices < 2:
                    continue  # a 1x1 system has no communication at all
                cfg = preset_workload(preset, n_devices)
                if seed is not None:
                    cfg = dataclasses.replace(cfg, seed=seed)
                if scale != 1.0:
                    cfg = scaled_config(cfg, scale)
                for msg in message_sizes:
                    collective = CollectiveSpec(chunk_bytes=msg)
                    pgas = PGASSpec(message_bytes=msg)
                    totals = {}
                    traffic = {}
                    hier_counters: Dict[str, float] = {}
                    for mode in ("flat", "hier"):
                        backend = base if mode == "flat" else f"{base}+hier"
                        runspec = RunSpec(
                            cfg,
                            n_devices=n_devices,
                            backend=backend,
                            hier=(HierSpec(devices_per_node=dpn)
                                  if mode == "hier" else None),
                        )
                        emb = build_backend(
                            runspec,
                            cluster=multinode(n_nodes, dpn),
                            collective_spec=collective,
                            pgas_spec=pgas,
                        )
                        gen = SyntheticDataGenerator(cfg)
                        total = 0.0
                        for _ in range(n_batches):
                            total += emb.forward_timed(
                                gen.lengths_batch()
                            ).total_ns
                        totals[mode] = total
                        traffic[mode] = (
                            inter_node_message_count(
                                emb.cluster.interconnect, dpn
                            ),
                            inter_node_wire_bytes(
                                emb.cluster.interconnect, dpn
                            ),
                        )
                        if mode == "hier":
                            counters = emb.cluster.profiler.counters
                            hier_counters = {
                                name: float(c.total)
                                for name, c in counters.items()
                                if name.startswith("hier.")
                            }
                    wire = _message_wire_bytes(base, msg, collective, pgas)
                    point_fields = {
                        "backend": base,
                        "n_nodes": n_nodes,
                        "devices_per_node": dpn,
                        "message_bytes": msg,
                        "n_batches": n_batches,
                        "flat_total_ns": totals["flat"],
                        "hier_total_ns": totals["hier"],
                        "flat_inter_messages": traffic["flat"][0],
                        "hier_inter_messages": traffic["hier"][0],
                        "flat_inter_bytes": traffic["flat"][1],
                        "hier_inter_bytes": traffic["hier"][1],
                        "hier_nic_transfers": hier_counters.get(
                            "hier.nic_transfers", 0.0
                        ),
                        "hier_fwd_bytes": hier_counters.get(
                            "hier.fwd_bytes", 0.0
                        ),
                        "hier_scatter_bytes": hier_counters.get(
                            "hier.scatter_bytes", 0.0
                        ),
                        "nic_bandwidth": NIC_SPEC.bandwidth,
                        "nic_per_message_ns": NIC_SPEC.per_message_ns,
                        "message_wire_bytes": wire,
                    }
                    point_fields["message_rate_bound"] = _rate_bound(
                        point_fields
                    )
                    sweep.points.append(HierSweepPoint(**point_fields))
    return sweep
