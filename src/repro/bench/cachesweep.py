"""Hot-row cache sweep: hit rate and EMB speedup vs skew and capacity.

For each (zipf alpha, cache capacity) point the sweep measures one base
backend with and without the cache on identical batch streams: simulated
EMB forward time, EMB-pass comm volume (the paper's wire-byte metric),
and the cache's hit rate.  The expected shape — and what the acceptance
tests assert — is that once the workload is skewed (alpha ≳ 1.05) and the
cache holds a few percent of the remote rows, both the comm volume and
the forward time drop strictly below the uncached backend.

:func:`serving_cache_comparison` closes the serving loop: tail latency
vs offered load with and without the cache, same arrival stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cache import CacheConfig
from ..core.baseline import PhaseTiming
from ..core.factory import FeatureSpec
from ..core.pipeline import DLRMInferencePipeline, PipelineConfig
from ..core.retrieval import DistributedEmbedding
from ..core.serving import InferenceServer, ServingResult, ServingSpec
from ..core.workload import lengths_from_batch
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from .reporting import format_table

__all__ = [
    "CacheSweepPoint",
    "CacheSweepResult",
    "run_cache_sweep",
    "serving_cache_comparison",
]


@dataclass(frozen=True)
class CacheSweepPoint:
    """One (alpha, capacity) measurement of cached vs uncached."""

    zipf_alpha: float
    capacity_fraction: float
    base: str  #: underlying backend name ("pgas" or "baseline")
    uncached: PhaseTiming
    cached: PhaseTiming
    uncached_comm_bytes: float
    cached_comm_bytes: float
    hit_rate: float

    @property
    def speedup(self) -> float:
        """Uncached over cached EMB forward time."""
        return self.uncached.total_ns / self.cached.total_ns

    @property
    def comm_reduction(self) -> float:
        """Fraction of wire bytes the cache removed."""
        if self.uncached_comm_bytes <= 0:
            return 0.0
        return 1.0 - self.cached_comm_bytes / self.uncached_comm_bytes


@dataclass
class CacheSweepResult:
    """A finished cache sweep."""

    base: str
    policy: str
    n_devices: int
    n_batches: int
    points: List[CacheSweepPoint] = field(default_factory=list)

    def point(self, zipf_alpha: float, capacity_fraction: float) -> CacheSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if p.zipf_alpha == zipf_alpha and p.capacity_fraction == capacity_fraction:
                return p
        raise KeyError(f"no point ({zipf_alpha}, {capacity_fraction})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [
                f"{p.zipf_alpha:g}",
                f"{p.capacity_fraction:.0%}",
                f"{p.hit_rate:.1%}",
                f"{p.uncached_comm_bytes / 1e6:.3f}",
                f"{p.cached_comm_bytes / 1e6:.3f}",
                f"{p.comm_reduction:.1%}",
                f"{p.uncached.total_ns / 1e6:.3f}",
                f"{p.cached.total_ns / 1e6:.3f}",
                f"{p.speedup:.3f}x",
            ]
            for p in self.points
        ]
        return (
            f"[cache sweep: {self.base} vs {self.base}+cache ({self.policy}) "
            f"@ {self.n_devices} GPUs, {self.n_batches} batches]\n"
            + format_table(
                [
                    "alpha",
                    "capacity",
                    "hit rate",
                    "comm (MB)",
                    "comm+$ (MB)",
                    "comm cut",
                    "EMB (ms)",
                    "EMB+$ (ms)",
                    "speedup",
                ],
                rows,
            )
        )


def run_cache_sweep(
    base_config: WorkloadConfig,
    alphas: Sequence[float],
    capacity_fractions: Sequence[float],
    *,
    base: str = "pgas",
    policy: str = "lru",
    n_devices: int = 2,
    n_batches: int = 4,
    warm_batches: int = 1,
) -> CacheSweepResult:
    """Measure cached vs uncached over an (alpha × capacity) grid.

    Each point replays the *same* batch stream through both variants on
    fresh clusters.  ``warm_batches`` extra leading batches prime the
    cache (and, for ``static-topk``, feed the profiled frequency pass)
    without being counted in either variant's timing.
    """
    if not alphas or not capacity_fractions:
        raise ValueError("sweep needs at least one alpha and one capacity")
    if n_batches <= 0:
        raise ValueError("n_batches must be positive")
    result = CacheSweepResult(
        base=base, policy=policy, n_devices=n_devices, n_batches=n_batches
    )
    for alpha in alphas:
        cfg = dataclasses.replace(
            base_config, index_distribution="zipf", zipf_alpha=float(alpha)
        )
        gen = SyntheticDataGenerator(cfg)
        warm = [gen.sparse_batch() for _ in range(warm_batches)]
        batches = [gen.sparse_batch() for _ in range(n_batches)]

        # Uncached reference (timing is capacity-independent).
        emb_ref = DistributedEmbedding(cfg, n_devices, backend=base)
        ref_adapter = emb_ref.backend_adapter()
        ref_timing = PhaseTiming()
        ref_comm = 0.0
        for b in batches:
            workloads = emb_ref.build_workloads(lengths_from_batch(b))
            ref_timing.add(ref_adapter.run_timed(workloads))
            ref_comm += sum(wl.remote_output_bytes for wl in workloads)

        for frac in capacity_fractions:
            emb = DistributedEmbedding(
                cfg,
                n_devices,
                backend=f"{base}+cache",
                features=FeatureSpec(
                    cache=CacheConfig(capacity_fraction=float(frac), policy=policy)
                ),
            )
            engine = emb.backend_adapter()
            if policy == "static-topk" and warm:
                engine.warm_static(warm)
            else:
                for b in warm:
                    engine.plan_batch(b)
            timing = PhaseTiming()
            comm = 0.0
            hits = misses = 0
            for b in batches:
                cplan = engine.plan_batch(b)
                timing.add(engine.run_plan(cplan))
                comm += cplan.remote_bytes
                hits += cplan.hits
                misses += cplan.misses
            result.points.append(
                CacheSweepPoint(
                    zipf_alpha=float(alpha),
                    capacity_fraction=float(frac),
                    base=base,
                    uncached=ref_timing,
                    cached=timing,
                    uncached_comm_bytes=ref_comm,
                    cached_comm_bytes=comm,
                    hit_rate=hits / (hits + misses) if hits + misses else 0.0,
                )
            )
    return result


def serving_cache_comparison(
    pipeline_config: PipelineConfig,
    qps_values: Sequence[float],
    *,
    backend: str = "pgas",
    cache: Optional[CacheConfig] = None,
    n_devices: int = 2,
    n_requests: int = 400,
    max_batch: int = 128,
    seed: int = 0,
) -> List[Tuple[float, ServingResult, ServingResult]]:
    """Tail latency vs offered load, with and without the hot-row cache.

    Returns ``(qps, uncached_result, cached_result)`` per load point; both
    variants see the same Poisson arrival stream (same seed) on fresh
    clusters, so any latency gap is the EMB stage's.
    """
    cache = cache or CacheConfig()
    out: List[Tuple[float, ServingResult, ServingResult]] = []
    for qps in qps_values:
        plain = InferenceServer(
            DLRMInferencePipeline(pipeline_config, n_devices, backend=backend),
            ServingSpec(arrival_qps=float(qps), max_batch=max_batch, seed=seed),
        ).simulate(n_requests)
        cached = InferenceServer(
            DLRMInferencePipeline(pipeline_config, n_devices, backend=f"{backend}+cache"),
            ServingSpec(
                arrival_qps=float(qps), max_batch=max_batch, seed=seed, cache=cache
            ),
        ).simulate(n_requests)
        out.append((float(qps), plain, cached))
    return out
