"""Weak/strong scaling experiment drivers (paper §IV-A / §IV-B).

Each driver replays the paper's protocol: the same synthetic inputs feed
both backends; the accumulated EMB-forward time over ``n_batches`` batches
is the measurement; speedups and scaling factors are derived exactly as in
the paper:

* weak-scaling factor (Fig. 5)  = t(1 GPU) / t(G GPUs)   (ideal: flat 1.0)
* strong-scaling factor (Fig. 8) = t(1 GPU) / t(G GPUs)  (ideal: the line G)
* speedup tables                 = t(baseline) / t(PGAS) per GPU count.

Weak scaling grows the *table count* with the GPUs (64 tables per GPU);
strong scaling keeps 96 tables total and partitions them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.baseline import PhaseTiming
from ..core.retrieval import BackendName, DistributedEmbedding
from ..dlrm.data import (
    STRONG_SCALING_TOTAL,
    SyntheticDataGenerator,
    WEAK_SCALING_BASE,
    WorkloadConfig,
)

__all__ = ["ScalingPoint", "ScalingResult", "run_weak_scaling", "run_strong_scaling", "geomean"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's summary statistic)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of nothing")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class ScalingPoint:
    """Both backends' accumulated timings at one GPU count."""

    n_devices: int
    baseline: PhaseTiming
    pgas: PhaseTiming

    @property
    def speedup(self) -> float:
        """PGAS speedup over the baseline at this GPU count."""
        return self.baseline.total_ns / self.pgas.total_ns


@dataclass
class ScalingResult:
    """A full scaling sweep over GPU counts."""

    kind: str  #: "weak" or "strong"
    config: WorkloadConfig  #: per-GPU (weak) or total (strong) workload
    n_batches: int
    points: List[ScalingPoint] = field(default_factory=list)

    def point(self, n_devices: int) -> ScalingPoint:
        """The sweep point at one GPU count."""
        for p in self.points:
            if p.n_devices == n_devices:
                return p
        raise KeyError(f"no point for {n_devices} devices")

    @property
    def device_counts(self) -> List[int]:
        """GPU counts in sweep order."""
        return [p.n_devices for p in self.points]

    def total_ns(self, backend: BackendName, n_devices: int) -> float:
        """Accumulated runtime of one backend at one GPU count."""
        p = self.point(n_devices)
        return (p.baseline if backend == "baseline" else p.pgas).total_ns

    def scaling_factor(self, backend: BackendName, n_devices: int) -> float:
        """t(1 GPU) / t(G GPUs) for a backend (Figs. 5 and 8)."""
        return self.total_ns(backend, 1) / self.total_ns(backend, n_devices)

    def speedup_table(self) -> Dict[int, float]:
        """The paper's speedup rows: {G: PGAS-over-baseline} for G >= 2."""
        return {p.n_devices: p.speedup for p in self.points if p.n_devices >= 2}

    @property
    def geomean_speedup(self) -> float:
        """Geometric-mean speedup over the multi-GPU points."""
        return geomean(self.speedup_table().values())


def _run_point(
    config: WorkloadConfig,
    n_devices: int,
    n_batches: int,
    seed: int,
) -> ScalingPoint:
    """Accumulate both backends over identical inputs at one GPU count."""
    # Identical inputs for both backends: regenerate with the same seed.
    gen = SyntheticDataGenerator(
        WorkloadConfig(
            num_tables=config.num_tables,
            rows_per_table=config.rows_per_table,
            dim=config.dim,
            batch_size=config.batch_size,
            max_pooling=config.max_pooling,
            min_pooling=config.min_pooling,
            index_distribution=config.index_distribution,
            pooling=config.pooling,
            seed=seed,
        )
    )
    batches = [gen.lengths_batch() for _ in range(n_batches)]

    base = DistributedEmbedding(config, n_devices, backend="baseline")
    base_total = PhaseTiming()
    for lengths in batches:
        base_total.add(base.forward_timed(lengths))

    pg = DistributedEmbedding(config, n_devices, backend="pgas")
    pgas_total = PhaseTiming()
    for lengths in batches:
        pgas_total.add(pg.forward_timed(lengths))

    return ScalingPoint(n_devices=n_devices, baseline=base_total, pgas=pgas_total)


def run_weak_scaling(
    base_config: WorkloadConfig = WEAK_SCALING_BASE,
    device_counts: Sequence[int] = (1, 2, 3, 4),
    n_batches: int = 100,
    seed: int = 2024,
) -> ScalingResult:
    """Paper §IV-A: constant per-GPU workload, tables grow with GPUs."""
    result = ScalingResult(kind="weak", config=base_config, n_batches=n_batches)
    for G in device_counts:
        cfg = base_config.scaled_tables(base_config.num_tables * G)
        result.points.append(_run_point(cfg, G, n_batches, seed))
    return result


def run_strong_scaling(
    total_config: WorkloadConfig = STRONG_SCALING_TOTAL,
    device_counts: Sequence[int] = (1, 2, 3, 4),
    n_batches: int = 100,
    seed: int = 2024,
) -> ScalingResult:
    """Paper §IV-B: constant total workload, partitioned over GPUs."""
    result = ScalingResult(kind="strong", config=total_config, n_batches=n_batches)
    for G in device_counts:
        result.points.append(_run_point(total_config, G, n_batches, seed))
    return result
