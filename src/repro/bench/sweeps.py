"""Generic parameter sweeps over the retrieval backends.

A :class:`Sweep` varies one knob of the workload (or system) and measures
both backends at each point — the machinery behind the ablation benches
and the CLI's ``sweep`` command.  Points are measured on fresh clusters so
sweeps are order-independent and deterministic given the seed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.baseline import PhaseTiming
from ..core.retrieval import DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from .reporting import format_table

__all__ = ["SweepPoint", "SweepResult", "Sweep", "batch_size_sweep", "pooling_sweep", "table_count_sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Both backends at one knob value."""

    value: float
    baseline: PhaseTiming
    pgas: PhaseTiming

    @property
    def speedup(self) -> float:
        """PGAS over baseline at this point."""
        return self.baseline.total_ns / self.pgas.total_ns


@dataclass
class SweepResult:
    """A finished sweep."""

    knob: str
    n_devices: int
    points: List[SweepPoint] = field(default_factory=list)

    @property
    def values(self) -> List[float]:
        """Knob values in sweep order."""
        return [p.value for p in self.points]

    @property
    def speedups(self) -> List[float]:
        """PGAS speedups in sweep order."""
        return [p.speedup for p in self.points]

    def render(self) -> str:
        """Text table of the sweep."""
        rows = [
            [
                f"{p.value:g}",
                f"{p.baseline.total_ns / 1e6:.3f}",
                f"{p.pgas.total_ns / 1e6:.3f}",
                f"{p.speedup:.2f}x",
            ]
            for p in self.points
        ]
        return (
            f"[sweep: {self.knob} @ {self.n_devices} GPUs]\n"
            + format_table([self.knob, "baseline (ms)", "PGAS (ms)", "speedup"], rows)
        )


class Sweep:
    """Sweep one workload knob across both backends."""

    def __init__(
        self,
        knob: str,
        mutate: Callable[[WorkloadConfig, float], WorkloadConfig],
        base_config: WorkloadConfig,
        n_devices: int = 2,
        n_batches: int = 1,
    ):
        if n_devices <= 0 or n_batches <= 0:
            raise ValueError("n_devices and n_batches must be positive")
        self.knob = knob
        self.mutate = mutate
        self.base_config = base_config
        self.n_devices = n_devices
        self.n_batches = n_batches

    def run(self, values: Sequence[float]) -> SweepResult:
        """Measure every knob value; returns the collected result."""
        if not values:
            raise ValueError("sweep needs at least one value")
        result = SweepResult(knob=self.knob, n_devices=self.n_devices)
        for v in values:
            cfg = self.mutate(self.base_config, v)
            gen = SyntheticDataGenerator(cfg)
            batches = [gen.lengths_batch() for _ in range(self.n_batches)]
            base_t, pgas_t = PhaseTiming(), PhaseTiming()
            base = DistributedEmbedding(cfg, self.n_devices, backend="baseline")
            pgas = DistributedEmbedding(cfg, self.n_devices, backend="pgas")
            for lengths in batches:
                base_t.add(base.forward_timed(lengths))
                pgas_t.add(pgas.forward_timed(lengths))
            result.points.append(SweepPoint(value=float(v), baseline=base_t, pgas=pgas_t))
        return result


def batch_size_sweep(
    base_config: WorkloadConfig, n_devices: int = 2, n_batches: int = 1
) -> Sweep:
    """Sweep the batch size (latency- vs bandwidth-limited regimes)."""
    return Sweep(
        "batch_size",
        lambda cfg, v: cfg.with_batch_size(int(v)),
        base_config,
        n_devices,
        n_batches,
    )


def pooling_sweep(
    base_config: WorkloadConfig, n_devices: int = 2, n_batches: int = 1
) -> Sweep:
    """Sweep the pooling cap (compute/communication balance)."""
    return Sweep(
        "max_pooling",
        lambda cfg, v: dataclasses.replace(cfg, max_pooling=int(v)),
        base_config,
        n_devices,
        n_batches,
    )


def table_count_sweep(
    base_config: WorkloadConfig, n_devices: int = 2, n_batches: int = 1
) -> Sweep:
    """Sweep the table count (model-parallel width)."""
    return Sweep(
        "num_tables",
        lambda cfg, v: cfg.scaled_tables(int(v)),
        base_config,
        n_devices,
        n_batches,
    )
