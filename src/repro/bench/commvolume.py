"""Communication volume over time (paper Figs. 7 and 10).

Reproduces the paper's instrument: a counter credited on every one-sided
write (PGAS) or on every delivered collective chunk (baseline), read on a
fixed period over the run.  The paper polls every hundred GPU clock cycles
and plots volume in 256-byte units; we default to a 50 µs sampling period
at the paper scale and the same 256-byte unit.

Expected shapes (asserted by the benches):

* **PGAS** — volume grows roughly linearly across the whole kernel
  (messages leave as waves retire);
* **baseline** — a long flat-at-zero prefix (the compute phase; "a long
  initial period when communication volume stays flat at 0") followed by a
  steep ramp during the collective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..comm.pgas import PGASContext
from ..core.retrieval import BackendName, DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from ..simgpu.interconnect import Interconnect
from ..simgpu.units import us

__all__ = ["CommVolumeTrace", "trace_comm_volume"]

#: the paper's counter unit: one 256-byte message
UNIT_BYTES = 256


@dataclass
class CommVolumeTrace:
    """Sampled cumulative communication volume of one batch."""

    backend: str
    n_devices: int
    total_ns: float
    times_ns: np.ndarray  #: sample instants, starting at batch start = 0
    volume_units: np.ndarray  #: cumulative volume in 256-byte units

    @property
    def total_units(self) -> float:
        """Final cumulative volume."""
        return float(self.volume_units[-1]) if self.volume_units.size else 0.0

    def normalized(self) -> Tuple[np.ndarray, np.ndarray]:
        """(time fraction of run, volume fraction of total) for plotting."""
        if self.total_ns <= 0 or self.total_units <= 0:
            return self.times_ns, self.volume_units
        return self.times_ns / self.total_ns, self.volume_units / self.total_units

    def flat_prefix_fraction(self, eps: float = 0.01) -> float:
        """Fraction of the run before volume exceeds ``eps`` of the total.

        The baseline's "long initial period when communication volume stays
        flat at 0"; near zero for PGAS.
        """
        if self.total_units <= 0:
            return 1.0
        t, v = self.normalized()
        above = np.flatnonzero(v > eps)
        if above.size == 0:
            return 1.0
        return float(t[above[0]])


def trace_comm_volume(
    config: WorkloadConfig,
    n_devices: int,
    backend: BackendName,
    *,
    sample_period_ns: float = 50 * us,
    seed: int = 2024,
) -> CommVolumeTrace:
    """Run one batch and sample its comm counter over the run window."""
    emb = DistributedEmbedding(config, n_devices, backend=backend)
    gen = SyntheticDataGenerator(config)
    lengths = gen.lengths_batch()
    cluster = emb.cluster
    t_start = cluster.engine.now
    timing = emb.forward_timed(lengths)
    t_end = cluster.engine.now

    # PGAS puts and collective chunks stamp different counters; merge both
    # (a single batch only populates the one its backend uses).
    prof = cluster.profiler
    times = np.arange(t_start, t_end, sample_period_ns, dtype=np.float64)
    times = np.append(times, t_end)
    volume = np.zeros_like(times)
    for name in (Interconnect.COUNTER, PGASContext.COUNTER):
        counter = prof.counters.get(name)
        if counter is None:
            continue
        _, vals = counter.sample(t_start, t_end, sample_period_ns)
        volume += vals
    return CommVolumeTrace(
        backend=backend,
        n_devices=n_devices,
        total_ns=timing.total_ns,
        times_ns=times - t_start,
        volume_units=volume / UNIT_BYTES,
    )
