"""Runtime-component breakdowns (paper Figs. 6 and 9).

For each GPU count, the baseline runtime is split into the paper's three
components — **Computation**, **Communication**, **Sync + Unpack** — and
set next to the PGAS fused total (which the paper plots as a single bar,
the whole point being that its phases cannot be separated).

The phase times come straight from :class:`~repro.core.baseline.PhaseTiming`
accumulated by the scaling drivers, which measure them the way the paper
does (§IV-A2a): communication is the pure transfer window, sync+unpack is
the control path plus the rearrangement pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .scaling import ScalingResult

__all__ = ["BreakdownBar", "BreakdownResult", "breakdown_from_scaling"]


@dataclass(frozen=True)
class BreakdownBar:
    """One GPU count's bar group in Fig. 6/9."""

    n_devices: int
    baseline_compute_ns: float
    baseline_comm_ns: float
    baseline_sync_unpack_ns: float
    pgas_total_ns: float

    @property
    def baseline_total_ns(self) -> float:
        """Sum of the baseline's three components."""
        return (
            self.baseline_compute_ns
            + self.baseline_comm_ns
            + self.baseline_sync_unpack_ns
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for CSV/reporting."""
        return {
            "n_devices": float(self.n_devices),
            "baseline_compute_ns": self.baseline_compute_ns,
            "baseline_comm_ns": self.baseline_comm_ns,
            "baseline_sync_unpack_ns": self.baseline_sync_unpack_ns,
            "baseline_total_ns": self.baseline_total_ns,
            "pgas_total_ns": self.pgas_total_ns,
        }


@dataclass
class BreakdownResult:
    """Fig. 6 (weak) or Fig. 9 (strong) data."""

    kind: str
    bars: List[BreakdownBar] = field(default_factory=list)

    def bar(self, n_devices: int) -> BreakdownBar:
        """Bar group for one GPU count."""
        for b in self.bars:
            if b.n_devices == n_devices:
                return b
        raise KeyError(f"no bar for {n_devices} devices")

    @property
    def device_counts(self) -> List[int]:
        """GPU counts in order."""
        return [b.n_devices for b in self.bars]


def breakdown_from_scaling(result: ScalingResult) -> BreakdownResult:
    """Derive the Fig. 6/9 bars from a finished scaling sweep."""
    out = BreakdownResult(kind=result.kind)
    for p in result.points:
        out.bars.append(
            BreakdownBar(
                n_devices=p.n_devices,
                baseline_compute_ns=p.baseline.compute_ns,
                baseline_comm_ns=p.baseline.comm_ns,
                baseline_sync_unpack_ns=p.baseline.sync_unpack_ns,
                pgas_total_ns=p.pgas.total_ns,
            )
        )
    return out
