"""Capacity study — the paper's §I/§II motivation, quantified.

"According to Facebook's records, the memory capacity requirements of
DLRMs grew 16-fold between 2017 and 2021" (§II-A) — i.e. roughly 2× per
year — which is "the major driving force to use multiple GPUs for DLRM"
(§I).  This study projects an embedding-table budget forward under a
growth factor, asks the placement planner for the minimal feasible GPU
count at each step, and runs both retrieval backends at that scale:
as the model forces more GPUs, the layout-conversion communication grows
and the PGAS scheme's advantage compounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.planner import PlacementError, plan_table_wise
from ..core.retrieval import DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from ..simgpu.device import DeviceSpec, V100_SPEC
from ..simgpu.units import GiB
from .reporting import format_table

__all__ = ["CapacityPoint", "CapacityStudy", "run_capacity_study"]


@dataclass(frozen=True)
class CapacityPoint:
    """One model generation's footprint and measured retrieval times."""

    step: int
    num_tables: int
    total_gib: float
    min_gpus: int
    baseline_ns: float
    pgas_ns: float

    @property
    def speedup(self) -> float:
        """PGAS over baseline at this generation."""
        return self.baseline_ns / self.pgas_ns if self.pgas_ns else 0.0


@dataclass
class CapacityStudy:
    """A finished growth projection."""

    growth_per_step: float
    device_spec: DeviceSpec
    points: List[CapacityPoint] = field(default_factory=list)

    def render(self) -> str:
        """Text table of the projection."""
        rows = [
            [
                str(p.step),
                str(p.num_tables),
                f"{p.total_gib:.1f}",
                str(p.min_gpus),
                f"{p.baseline_ns / 1e6:.2f}",
                f"{p.pgas_ns / 1e6:.2f}",
                f"{p.speedup:.2f}x" if p.min_gpus > 1 else "-",
            ]
            for p in self.points
        ]
        return (
            f"[capacity study: x{self.growth_per_step:g} per step on "
            f"{self.device_spec.name}]\n"
            + format_table(
                ["step", "tables", "GiB", "min GPUs",
                 "baseline (ms)", "PGAS (ms)", "speedup"],
                rows,
            )
        )


def run_capacity_study(
    base_tables: int = 32,
    steps: int = 4,
    growth_per_step: float = 2.0,
    *,
    rows_per_table: int = 1_000_000,
    dim: int = 64,
    batch_size: int = 16_384,
    max_pooling: int = 64,
    device_spec: DeviceSpec = V100_SPEC,
    max_devices: int = 64,
    seed: int = 2024,
) -> CapacityStudy:
    """Project table growth and measure both backends at each generation.

    Growth is applied to the table count (feature growth — the paper's
    §II-A observes both feature count and table sizes rising; table count
    is what changes the communication structure).
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    if growth_per_step <= 1.0:
        raise ValueError("growth_per_step must exceed 1.0")
    study = CapacityStudy(growth_per_step=growth_per_step, device_spec=device_spec)
    for step in range(steps):
        n_tables = max(int(round(base_tables * growth_per_step**step)), 1)
        cfg = WorkloadConfig(
            num_tables=n_tables, rows_per_table=rows_per_table, dim=dim,
            batch_size=batch_size, max_pooling=max_pooling, seed=seed,
        )
        report = plan_table_wise(
            cfg.table_configs(), device_spec=device_spec, max_devices=max_devices
        )
        G = report.n_devices
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        t_base = DistributedEmbedding(cfg, G, backend="baseline").forward_timed(lengths)
        t_pgas = DistributedEmbedding(cfg, G, backend="pgas").forward_timed(lengths)
        study.points.append(
            CapacityPoint(
                step=step,
                num_tables=n_tables,
                total_gib=cfg.total_table_bytes / GiB,
                min_gpus=G,
                baseline_ns=t_base.total_ns,
                pgas_ns=t_pgas.total_ns,
            )
        )
    return study
