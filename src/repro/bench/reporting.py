"""Rendering experiment results: paper-style text tables, CSV, ASCII plots.

The benchmarks print these renderings so a run's stdout can be compared
directly against the paper's tables and figures; EXPERIMENTS.md is written
from the same functions.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..simgpu.units import to_ms
from .breakdown import BreakdownResult
from .commvolume import CommVolumeTrace
from .scaling import ScalingResult

__all__ = [
    "format_table",
    "render_speedup_table",
    "render_scaling_figure",
    "render_breakdown",
    "render_comm_volume",
    "to_csv",
    "ascii_series",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Monospace table with aligned columns."""
    cols = [list(col) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(str(c)) for c in col) for col in cols]
    lines = []
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_speedup_table(result: ScalingResult) -> str:
    """The paper's speedup rows (§IV-A1 / §IV-B1)."""
    table = result.speedup_table()
    headers = ["Speedup"] + [f"{g} GPUs" for g in sorted(table)]
    rows = [["PGAS over baseline"] + [f"{table[g]:.2f}x" for g in sorted(table)]]
    footer = f"geomean: {result.geomean_speedup:.2f}x"
    return f"[{result.kind} scaling]\n{format_table(headers, rows)}\n{footer}"


def render_scaling_figure(result: ScalingResult) -> str:
    """Fig. 5 / Fig. 8 series: scaling factor per backend and GPU count."""
    headers = ["GPUs", "baseline factor", "PGAS factor", "ideal"]
    rows = []
    for g in result.device_counts:
        ideal = 1.0 if result.kind == "weak" else float(g)
        rows.append(
            [
                str(g),
                f"{result.scaling_factor('baseline', g):.3f}",
                f"{result.scaling_factor('pgas', g):.3f}",
                f"{ideal:.1f}",
            ]
        )
    title = "Fig. 5 (weak scaling factor)" if result.kind == "weak" else "Fig. 8 (strong scaling factor)"
    return f"[{title}]\n{format_table(headers, rows)}"


def render_breakdown(result: BreakdownResult) -> str:
    """Fig. 6 / Fig. 9 bars: per-GPU-count phase times in ms."""
    headers = [
        "GPUs",
        "base compute (ms)",
        "base comm (ms)",
        "base sync+unpack (ms)",
        "base total (ms)",
        "PGAS total (ms)",
    ]
    rows = []
    for b in result.bars:
        rows.append(
            [
                str(b.n_devices),
                f"{to_ms(b.baseline_compute_ns):.2f}",
                f"{to_ms(b.baseline_comm_ns):.2f}",
                f"{to_ms(b.baseline_sync_unpack_ns):.2f}",
                f"{to_ms(b.baseline_total_ns):.2f}",
                f"{to_ms(b.pgas_total_ns):.2f}",
            ]
        )
    title = "Fig. 6 (weak breakdown)" if result.kind == "weak" else "Fig. 9 (strong breakdown)"
    return f"[{title}]\n{format_table(headers, rows)}"


def ascii_series(
    xs: np.ndarray, ys: np.ndarray, *, width: int = 60, height: int = 12, label: str = ""
) -> str:
    """A tiny ASCII line plot (monotone series)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size == 0:
        return f"{label}: (empty)"
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = min(int((x - x0) / xr * (width - 1)), width - 1)
        cy = min(int((y - y0) / yr * (height - 1)), height - 1)
        grid[height - 1 - cy][cx] = "*"
    out = io.StringIO()
    if label:
        out.write(f"{label}\n")
    for row in grid:
        out.write("|" + "".join(row) + "\n")
    out.write("+" + "-" * width + "\n")
    return out.getvalue()


def render_comm_volume(traces: Sequence[CommVolumeTrace]) -> str:
    """Fig. 7 / Fig. 10: cumulative comm volume over (normalised) time."""
    parts: List[str] = []
    for tr in traces:
        t, v = tr.normalized()
        parts.append(
            ascii_series(
                t,
                v,
                label=(
                    f"{tr.backend} @ {tr.n_devices} GPUs — total "
                    f"{tr.total_units:.0f} x256B units over {to_ms(tr.total_ns):.2f} ms "
                    f"(flat prefix: {tr.flat_prefix_fraction():.0%})"
                ),
            )
        )
    return "\n".join(parts)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Minimal CSV rendering (no quoting needs in our data)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(str(c) for c in row))
    return "\n".join(lines) + "\n"
