"""One-call experiment runner: regenerate any paper artifact by id.

``run_experiment("T1")`` … ``run_experiment("F10")`` reproduce the paper's
two speedup tables and six evaluation figures; ``run_all`` does everything
(as ``examples/reproduce_paper.py`` and EXPERIMENTS.md do).  Scaling sweeps
are cached per (kind, n_batches, scale) so the four artifacts derived from
one sweep don't recompute it.

``scale`` trades fidelity for wall time: 1.0 is the paper's configuration
(batch 16384); smaller scales shrink the batch proportionally, preserving
every ratio the assertions check (the cost model is linear in batch size
above the latency floor).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..dlrm.data import STRONG_SCALING_TOTAL, WEAK_SCALING_BASE, WorkloadConfig
from .breakdown import BreakdownResult, breakdown_from_scaling
from .commvolume import CommVolumeTrace, trace_comm_volume
from .reporting import (
    render_breakdown,
    render_comm_volume,
    render_scaling_figure,
    render_speedup_table,
)
from .scaling import ScalingResult, run_strong_scaling, run_weak_scaling

__all__ = ["EXPERIMENT_IDS", "ExperimentRunner", "scaled_config"]

EXPERIMENT_IDS = ("T1", "F5", "F6", "F7", "T2", "F8", "F9", "F10")


def scaled_config(config: WorkloadConfig, scale: float) -> WorkloadConfig:
    """Shrink the batch dimension by ``scale`` (1.0 = paper size)."""
    if not (0.0 < scale <= 1.0):
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    B = max(int(round(config.batch_size * scale)), 256)
    return replace(config, batch_size=B)


@dataclass
class ExperimentRunner:
    """Runs and caches the paper's experiments.

    Parameters
    ----------
    n_batches:
        Batches accumulated per measurement (paper: 100).
    scale:
        Batch-size scale factor (1.0 = paper).
    device_counts:
        GPU counts to sweep (paper: 1–4).
    """

    n_batches: int = 100
    scale: float = 1.0
    device_counts: Sequence[int] = (1, 2, 3, 4)
    seed: int = 2024

    def __post_init__(self) -> None:
        self._weak: Optional[ScalingResult] = None
        self._strong: Optional[ScalingResult] = None

    # -- sweeps (cached) -------------------------------------------------------

    @property
    def weak_config(self) -> WorkloadConfig:
        """Per-GPU weak-scaling workload at the runner's scale."""
        return scaled_config(WEAK_SCALING_BASE, self.scale)

    @property
    def strong_config(self) -> WorkloadConfig:
        """Total strong-scaling workload at the runner's scale."""
        return scaled_config(STRONG_SCALING_TOTAL, self.scale)

    def weak(self) -> ScalingResult:
        """The weak-scaling sweep (computed once)."""
        if self._weak is None:
            self._weak = run_weak_scaling(
                self.weak_config, self.device_counts, self.n_batches, self.seed
            )
        return self._weak

    def strong(self) -> ScalingResult:
        """The strong-scaling sweep (computed once)."""
        if self._strong is None:
            self._strong = run_strong_scaling(
                self.strong_config, self.device_counts, self.n_batches, self.seed
            )
        return self._strong

    # -- artifacts ----------------------------------------------------------------

    def table_weak(self) -> ScalingResult:
        """T1 — weak-scaling speedup table."""
        return self.weak()

    def fig5(self) -> ScalingResult:
        """F5 — weak scaling factors."""
        return self.weak()

    def fig6(self) -> BreakdownResult:
        """F6 — weak-scaling runtime breakdown."""
        return breakdown_from_scaling(self.weak())

    def fig7(self) -> List[CommVolumeTrace]:
        """F7 — comm volume over time, 2 GPUs, weak config."""
        cfg = scaled_config(
            WEAK_SCALING_BASE.scaled_tables(WEAK_SCALING_BASE.num_tables * 2), self.scale
        )
        return [
            trace_comm_volume(cfg, 2, "pgas", seed=self.seed),
            trace_comm_volume(cfg, 2, "baseline", seed=self.seed),
        ]

    def table_strong(self) -> ScalingResult:
        """T2 — strong-scaling speedup table."""
        return self.strong()

    def fig8(self) -> ScalingResult:
        """F8 — strong scaling factors."""
        return self.strong()

    def fig9(self) -> BreakdownResult:
        """F9 — strong-scaling runtime breakdown."""
        return breakdown_from_scaling(self.strong())

    def fig10(self) -> List[CommVolumeTrace]:
        """F10 — comm volume over time, 4 GPUs, strong config."""
        cfg = self.strong_config
        return [
            trace_comm_volume(cfg, 4, "pgas", seed=self.seed),
            trace_comm_volume(cfg, 4, "baseline", seed=self.seed),
        ]

    # -- rendering ---------------------------------------------------------------

    def render(self, experiment_id: str) -> str:
        """Human-readable rendering of one artifact."""
        eid = experiment_id.upper()
        if eid == "T1":
            return render_speedup_table(self.table_weak())
        if eid == "F5":
            return render_scaling_figure(self.fig5())
        if eid == "F6":
            return render_breakdown(self.fig6())
        if eid == "F7":
            return render_comm_volume(self.fig7())
        if eid == "T2":
            return render_speedup_table(self.table_strong())
        if eid == "F8":
            return render_scaling_figure(self.fig8())
        if eid == "F9":
            return render_breakdown(self.fig9())
        if eid == "F10":
            return render_comm_volume(self.fig10())
        raise KeyError(f"unknown experiment id {experiment_id!r}; know {EXPERIMENT_IDS}")

    def run_all(self) -> Dict[str, str]:
        """Render every artifact: {experiment id: text}."""
        return {eid: self.render(eid) for eid in EXPERIMENT_IDS}
