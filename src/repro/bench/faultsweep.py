"""Fault sweep: serving SLOs vs. fault severity, per backend.

For each (severity, base backend) point the sweep builds a fresh cluster,
installs a :class:`~repro.faults.FaultPlan` generated from the severity
knob (same seed → same plan shape at every severity, scaled in depth),
and serves a Poisson request stream through the ``"+resilient"`` wrapper
of the base backend with a request deadline, load shedding, and hedged
re-execution enabled.  Severity ``0.0`` is the healthy reference: an
empty plan, where the wrapper reproduces the base backend exactly.

The rendered table answers the deployment question the robustness work
exists for: how do goodput, shed/degraded fractions, and tail latency
decay as the fabric gets sicker — and does the PGAS backend keep its
healthy-path advantage under fault?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..core.pipeline import DLRMInferencePipeline
from ..core.runspec import RunSpec
from ..core.serving import InferenceServer, SchedulerSpec, ServingResult, ServingSpec
from ..dlrm.data import WorkloadConfig
from ..faults import FaultInjector, FaultPlan, ResilienceSpec
from ..simgpu.units import ms
from .reporting import format_table

__all__ = ["FaultSweepPoint", "FaultSweepResult", "run_fault_sweep"]


@dataclass(frozen=True)
class FaultSweepPoint:
    """One (severity, base backend) serving measurement."""

    severity: float
    base: str  #: underlying backend name ("pgas" or "baseline")
    n_faults: int  #: windows in the installed plan
    result: ServingResult

    @property
    def backend(self) -> str:
        """The resilient backend name the point ran."""
        return self.result.backend


@dataclass
class FaultSweepResult:
    """A finished fault sweep."""

    n_devices: int
    n_requests: int
    arrival_qps: float
    deadline_ns: Optional[float]
    points: List[FaultSweepPoint] = field(default_factory=list)

    def point(self, severity: float, base: str) -> FaultSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if p.severity == severity and p.base == base:
                return p
        raise KeyError(f"no point ({severity}, {base})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            r = p.result
            served = r.n_requests > 0
            rows.append(
                [
                    f"{p.severity:g}",
                    p.base,
                    f"{p.n_faults}",
                    f"{r.n_requests}/{r.n_offered}",
                    f"{r.shed_fraction:.1%}",
                    f"{r.degraded_fraction:.2%}",
                    f"{r.emb_retries}",
                    f"{r.emb_reroutes}",
                    f"{r.n_hedged}",
                    f"{r.deadline_hit_rate:.1%}" if served else "-",
                    f"{r.p50_ms:.2f}" if served else "-",
                    f"{r.p99_ms:.2f}" if served else "-",
                    f"{r.goodput_qps:,.0f}" if served else "-",
                ]
            )
        deadline = (
            f"deadline {self.deadline_ns / ms:.2f} ms"
            if self.deadline_ns is not None
            else "no deadline"
        )
        return (
            f"[fault sweep @ {self.n_devices} GPUs, {self.n_requests} requests, "
            f"{self.arrival_qps:,.0f} qps, {deadline}]\n"
            + format_table(
                [
                    "severity",
                    "backend",
                    "faults",
                    "served",
                    "shed",
                    "degraded",
                    "retries",
                    "reroutes",
                    "hedged",
                    "hit rate",
                    "p50 (ms)",
                    "p99 (ms)",
                    "goodput",
                ],
                rows,
            )
        )


def run_fault_sweep(
    base_config: WorkloadConfig,
    severities: Sequence[float],
    *,
    bases: Sequence[str] = ("pgas", "baseline"),
    n_devices: int = 4,
    n_requests: int = 64,
    arrival_qps: float = 50_000.0,
    deadline_ns: Optional[float] = 10 * ms,
    emb_deadline_ns: Optional[float] = 5 * ms,
    queue_limit: Optional[int] = 512,
    hedge_after_ns: Optional[float] = None,
    max_batch: int = 8,
    batch_window_ns: float = 0.2 * ms,
    seed: int = 0,
    scheduler: Optional[SchedulerSpec] = None,
) -> FaultSweepResult:
    """Serve a request stream at each fault severity with each base backend.

    Every point gets a *fresh* pipeline (its own cluster: fault state
    never leaks between points) and the same seeds, so the severity axis
    is the only thing changing along a row.  ``emb_deadline_ns`` drives
    the resilient wrapper's retry machinery; ``deadline_ns`` is the
    request-level SLO being reported against.  ``scheduler`` optionally
    enables continuous batching at every point (default: sequential).
    """
    if not severities:
        raise ValueError("need at least one severity")
    if not bases:
        raise ValueError("need at least one base backend")
    sweep = FaultSweepResult(
        n_devices=n_devices,
        n_requests=n_requests,
        arrival_qps=arrival_qps,
        deadline_ns=deadline_ns,
    )
    # Plan horizon: a little past the expected arrival span, so windows
    # land inside the run instead of after it.
    horizon_ns = max(n_requests * 1e9 / arrival_qps * 2.0, 2 * ms)
    for severity in severities:
        for base in bases:
            spec = RunSpec(
                workload=base_config,
                n_devices=n_devices,
                backend=f"{base}+resilient",
                resilience=ResilienceSpec(deadline_ns=emb_deadline_ns, seed=seed),
                serving=ServingSpec(
                    arrival_qps=arrival_qps,
                    max_batch=max_batch,
                    batch_window_ns=batch_window_ns,
                    seed=seed,
                    deadline_ns=deadline_ns,
                    queue_limit=queue_limit,
                    hedge_after_ns=hedge_after_ns,
                ),
                scheduler=scheduler,
            )
            pipeline = DLRMInferencePipeline.from_spec(spec)
            plan = FaultPlan.generate(
                n_devices, horizon_ns, severity=severity, seed=seed
            )
            FaultInjector(pipeline.cluster, plan).install()
            server = InferenceServer.from_spec(spec, pipeline=pipeline)
            result = server.simulate(n_requests)
            sweep.points.append(
                FaultSweepPoint(
                    severity=severity, base=base, n_faults=len(plan), result=result
                )
            )
    return sweep
