"""Chaos sweep: goodput/availability vs. replication factor × failure count.

For each grid point the sweep builds a fresh ``<base>+replicated``
:class:`~repro.core.retrieval.DistributedEmbedding` (its own cluster, so
profiler counters and the heartbeat monitor never mix), runs one healthy
warm-up batch, installs an identical ``device_down`` fault plan, replays
the *identical* synthetic batch stream, and records:

* **availability** — served lookups / total lookups across all batches
  (a table whose every holder is dead drops its lookups; a live replica
  keeps them served);
* **goodput** — served lookups per second of simulated wall time, so the
  failover detour's extra comm cost shows up even when availability
  stays at 1.0;
* **recovery** — re-replication bytes, detection latency, and the
  down-edge → re-protected latency of the background recovery stream.

``write_json`` emits ``BENCH_availability.json`` for the CI chaos-smoke
gate; :func:`validate_chaossweep_json` is the self-check — it enforces
the invariants the artifact exists to witness: zero failures ⇒ perfect
availability and no failover/recovery traffic, and for every (backend,
failure count) pair, ``k = 2`` availability at least matching ``k = 1``
under the same fault plan.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.baseline import PhaseTiming
from ..core.factory import FeatureSpec
from ..core.retrieval import DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator
from ..faults import FaultEvent, FaultInjector, FaultPlan
from ..replication import ReplicationSpec
from ..simgpu.units import to_ms, us
from .reporting import format_table
from .runner import scaled_config
from .telemetry import preset_workload
from .validate import check_artifact, check_point

__all__ = [
    "ChaosSweepPoint",
    "ChaosSweepResult",
    "run_chaos_sweep",
    "validate_chaossweep_json",
]

#: heartbeat cadence used by the sweep: fast enough that failures are
#: detected within a tiny-preset batch or two
_SWEEP_HEARTBEAT_NS = 5 * us


@dataclass(frozen=True)
class ChaosSweepPoint:
    """One (backend, k, failure count) measurement."""

    backend: str  #: base backend the "+replicated" wrapper fronted
    k: int
    placement: str
    n_failures: int
    n_batches: int
    total_ns: float
    lookups_total: float
    served_lookups: float
    unavailable_lookups: float
    failover_lookups: float
    availability: float
    failures_detected: float
    recovery_bytes: float
    time_to_reprotect_ns: float

    @property
    def goodput_lookups_per_s(self) -> float:
        """Served lookups per second of simulated wall time."""
        if self.total_ns <= 0:
            return 0.0
        return self.served_lookups / (self.total_ns / 1e9)

    def as_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["goodput_lookups_per_s"] = self.goodput_lookups_per_s
        return payload


@dataclass
class ChaosSweepResult:
    """A finished chaos sweep."""

    preset: str
    n_devices: int
    n_batches: int
    points: List[ChaosSweepPoint] = field(default_factory=list)

    def point(self, backend: str, k: int, n_failures: int) -> ChaosSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if p.backend == backend and p.k == k and p.n_failures == n_failures:
                return p
        raise KeyError(f"no point ({backend}, k={k}, failures={n_failures})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.backend,
                    f"{p.k}",
                    f"{p.n_failures}",
                    f"{to_ms(p.total_ns):.3f}",
                    f"{p.availability:.4f}",
                    f"{p.goodput_lookups_per_s / 1e6:.2f}",
                    f"{int(p.failover_lookups)}",
                    f"{p.recovery_bytes / 1e6:.3f}",
                    (
                        f"{p.time_to_reprotect_ns / us:.1f}"
                        if p.time_to_reprotect_ns > 0
                        else "-"
                    ),
                ]
            )
        title = (
            f"[chaos sweep: {self.preset} preset, {self.n_devices} GPUs, "
            f"{self.n_batches} batches/point]"
        )
        return title + "\n" + format_table(
            [
                "backend",
                "k",
                "fails",
                "total (ms)",
                "availability",
                "goodput (M/s)",
                "failover",
                "recovery (MB)",
                "reprotect (us)",
            ],
            rows,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_availability.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


_POINT_KEYS = (
    "backend", "k", "placement", "n_failures", "n_batches", "total_ns",
    "lookups_total", "served_lookups", "unavailable_lookups",
    "failover_lookups", "availability", "failures_detected",
    "recovery_bytes", "time_to_reprotect_ns", "goodput_lookups_per_s",
)


def validate_chaossweep_json(data: Any) -> None:
    """Validate a ``BENCH_availability.json`` payload (raises ``ValueError``).

    Beyond shape, this enforces the availability invariants: lookup
    conservation (served + unavailable = total), perfect availability and
    zero failover/recovery traffic with no failures, detection plus
    finite positive re-protect latency (and real recovery bytes) whenever
    a replica existed to recover to, and — for every (backend, failure
    count) pair where both ran — ``k = 2`` availability ≥ ``k = 1``.
    """
    points = check_artifact(
        data,
        kind="availability",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_devices", "n_batches"),
    )
    groups: Dict[tuple, Dict[int, Dict[str, Any]]] = {}
    for i, point in enumerate(points):
        check_point(point, i, _POINT_KEYS)
        label = f"point {i} ({point['backend']}, k={point['k']}, " \
                f"failures={point['n_failures']})"
        if not (0.0 <= point["availability"] <= 1.0):
            raise ValueError(f"{label}: availability outside [0, 1]")
        if not math.isfinite(point["time_to_reprotect_ns"]):
            raise ValueError(f"{label}: time_to_reprotect_ns must be finite")
        conserved = point["served_lookups"] + point["unavailable_lookups"]
        if abs(conserved - point["lookups_total"]) > 0.5:
            raise ValueError(f"{label}: served + unavailable != total lookups")
        if point["total_ns"] <= 0 or point["goodput_lookups_per_s"] <= 0:
            raise ValueError(f"{label}: degenerate timing/goodput")
        if point["n_failures"] == 0:
            if point["availability"] != 1.0:
                raise ValueError(f"{label}: healthy run must have availability 1.0")
            if point["failover_lookups"] or point["recovery_bytes"]:
                raise ValueError(f"{label}: healthy run moved failover/recovery traffic")
        elif point["k"] >= 2:
            if point["failures_detected"] < 1:
                raise ValueError(f"{label}: failure was never detected")
            # Re-replication needs a live non-holder to copy to: with
            # k - 1 surviving holders, that means G - failures >= k.
            if data["n_devices"] - point["n_failures"] >= point["k"]:
                if point["recovery_bytes"] <= 0:
                    raise ValueError(f"{label}: recovery moved no bytes")
                if point["time_to_reprotect_ns"] <= 0:
                    raise ValueError(f"{label}: recovery never completed")
        groups.setdefault((point["backend"], point["n_failures"]), {})[
            point["k"]
        ] = point
    for (backend, fails), by_k in groups.items():
        k1 = by_k.get(1)
        k2 = by_k.get(2)
        if k1 is None or k2 is None:
            continue
        if k2["availability"] < k1["availability"]:
            raise ValueError(
                f"({backend}, failures={fails}): k=2 availability "
                f"{k2['availability']} below k=1 {k1['availability']}"
            )


def run_chaos_sweep(
    preset: str = "tiny",
    *,
    n_devices: int = 4,
    ks: Sequence[int] = (1, 2),
    failure_counts: Sequence[int] = (0, 1),
    bases: Sequence[str] = ("pgas", "baseline"),
    placement: str = "spread",
    n_batches: int = 6,
    recovery_bandwidth_share: float = 0.25,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> ChaosSweepResult:
    """Measure every (base backend, k, failure count) grid point.

    Every point gets a fresh embedding (its own cluster and heartbeat
    monitor) but an identical batch stream and an identical fault plan:
    after one healthy warm-up batch, devices ``0..n_failures-1`` die
    permanently, and the remaining ``n_batches - 1`` batches run through
    detection, failover, and background recovery.  The grid coordinates
    are the only thing changing between rows.
    """
    if not ks or not bases or not failure_counts:
        raise ValueError("every sweep axis needs at least one value")
    for base in bases:
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r}")
    if n_batches < 2:
        raise ValueError("need >= 2 batches (one healthy warm-up, then chaos)")
    if max(failure_counts) >= n_devices:
        raise ValueError("cannot fail every device in the cluster")
    cfg = preset_workload(preset, n_devices)
    if seed is not None:
        cfg = dataclasses.replace(cfg, seed=seed)
    if scale != 1.0:
        cfg = scaled_config(cfg, scale)

    sweep = ChaosSweepResult(preset=preset, n_devices=n_devices, n_batches=n_batches)
    for base in bases:
        for k in ks:
            for n_failures in failure_counts:
                spec = ReplicationSpec(
                    k=k,
                    placement=placement,
                    recovery_bandwidth_share=recovery_bandwidth_share,
                    heartbeat_interval_ns=_SWEEP_HEARTBEAT_NS,
                )
                emb = DistributedEmbedding(
                    cfg,
                    n_devices,
                    backend=f"{base}+replicated",
                    features=FeatureSpec(replication=spec),
                )
                adapter = emb.backend_adapter(f"{base}+replicated")
                gen = SyntheticDataGenerator(cfg)
                total = PhaseTiming()
                total.add(adapter.run_timed(emb.build_workloads(gen.lengths_batch())))
                if n_failures:
                    plan = FaultPlan(tuple(
                        FaultEvent("device_down", 1.0 + d, 1e9, device=d)
                        for d in range(n_failures)
                    ))
                    FaultInjector(emb.cluster, plan).install()
                for _ in range(n_batches - 1):
                    total.add(
                        adapter.run_timed(emb.build_workloads(gen.lengths_batch()))
                    )
                adapter.wait_for_reprotect(
                    limit_ns=emb.cluster.engine.now + 1e9
                )
                totals = adapter.totals()
                counters = emb.cluster.profiler.counters

                def counter_total(name: str) -> float:
                    c = counters.get(name)
                    return float(c.total) if c is not None else 0.0

                served = totals["lookups_total"] - totals["unavailable_lookups"]
                sweep.points.append(
                    ChaosSweepPoint(
                        backend=base,
                        k=k,
                        placement=placement,
                        n_failures=n_failures,
                        n_batches=n_batches,
                        total_ns=total.total_ns,
                        lookups_total=totals["lookups_total"],
                        served_lookups=served,
                        unavailable_lookups=totals["unavailable_lookups"],
                        failover_lookups=totals["failover_lookups"],
                        availability=totals["availability"],
                        failures_detected=totals["failures_detected"],
                        recovery_bytes=counter_total("availability.recovery_bytes"),
                        time_to_reprotect_ns=totals["time_to_reprotect_ns"],
                    )
                )
    return sweep
