"""Telemetry bench: side-by-side backend metrics and ``BENCH_metrics.json``.

Runs the same workload through each backend on a fresh cluster, derives a
full :class:`~repro.telemetry.RunReport` per backend, and renders the
paper-facing comparison (overlap fraction, exposed comm, link burstiness,
unpack share) as one table — the quantitative form of the paper's
"communication is hidden and smoothed" claims.  ``write_json`` emits the
machine-readable artifact a CI perf gate can diff across commits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.baseline import PhaseTiming
from ..core.retrieval import DistributedEmbedding
from ..core.runspec import PRESETS, RunSpec, preset_runspec
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from ..simgpu.units import to_ms
from ..telemetry import RunReport, validate_report
from .reporting import format_table
from .runner import scaled_config
from .validate import check_artifact

__all__ = [
    "METRIC_ROWS",
    "PRESETS",
    "MetricsComparison",
    "preset_workload",
    "run_metrics",
    "validate_metrics_json",
]

# PRESETS is re-exported from repro.core.runspec (its canonical home).

#: rows of the comparison table: (metric name, label, formatter)
METRIC_ROWS = (
    ("overlap_fraction", "overlap fraction", lambda v: f"{v:.3f}"),
    ("exposed_comm_ns", "exposed comm (ms)", lambda v: f"{to_ms(v):.3f}"),
    ("link_peak_to_mean", "link peak-to-mean", lambda v: f"{v:.2f}"),
    ("link_gini", "link Gini", lambda v: f"{v:.3f}"),
    ("unpack_share", "unpack share", lambda v: f"{v:.3f}"),
    ("comm_bytes_total", "comm volume (MB)", lambda v: f"{v / 1e6:.1f}"),
    ("run_wall_ns", "run wall (ms)", lambda v: f"{to_ms(v):.3f}"),
)


def preset_workload(preset: str, n_devices: int) -> WorkloadConfig:
    """Resolve a named preset to a workload for ``n_devices`` GPUs.

    Thin shim over :func:`repro.core.runspec.preset_runspec` — the preset
    definitions live there so every entry point (run/metrics/faultsweep/
    servesweep) resolves the same shapes.
    """
    return preset_runspec(preset, n_devices).workload


@dataclass
class MetricsComparison:
    """Per-backend run reports over one shared workload."""

    preset: str
    workload: WorkloadConfig
    n_devices: int
    n_batches: int
    reports: Dict[str, RunReport] = field(default_factory=dict)

    def metric(self, backend: str, name: str) -> float:
        """One backend's metric value (NaN when absent)."""
        return self.reports[backend].metric(name)

    def render(self) -> str:
        """Side-by-side metric table, one column per backend."""
        backends = list(self.reports)
        headers = ["metric"] + backends
        rows: List[List[str]] = []
        for name, label, fmt in METRIC_ROWS:
            row = [label]
            for be in backends:
                value = self.metric(be, name)
                row.append(fmt(value) if value == value else "-")
            rows.append(row)
        title = (
            f"[telemetry: {self.preset} preset, {self.workload.num_tables} tables, "
            f"batch {self.workload.batch_size}, {self.n_devices} GPUs, "
            f"{self.n_batches} batch(es)]"
        )
        return f"{title}\n{format_table(headers, rows)}"

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_metrics.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "reports": {be: r.as_dict() for be, r in self.reports.items()},
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


def validate_metrics_json(data: Any) -> None:
    """Validate a ``BENCH_metrics.json`` payload (raises on violation)."""
    from ..telemetry.report import ReportValidationError

    reports = check_artifact(
        data,
        kind="metrics",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_devices", "n_batches"),
        collection="reports",
        noun="report",
        error=ReportValidationError,
        collection_type=dict,
    )
    for backend, report in reports.items():
        try:
            validate_report(report)
        except ReportValidationError as exc:
            raise ReportValidationError(f"report {backend!r}: {exc}") from None


def run_metrics(
    preset: str = "weak",
    *,
    n_devices: int = 2,
    backends: Sequence[str] = ("pgas", "baseline"),
    n_batches: int = 1,
    scale: float = 1.0,
    n_bins: int = 240,
    include_series: bool = True,
    seed: Optional[int] = None,
) -> MetricsComparison:
    """Run every backend over the same batches and derive its report.

    Each backend gets a fresh cluster (so profiler records don't mix) but
    the identical batch stream; ``scale`` shrinks the batch dimension for
    quick runs (1.0 = paper size).
    """
    cfg = preset_workload(preset, n_devices)
    if seed is not None:
        import dataclasses

        cfg = dataclasses.replace(cfg, seed=seed)
    if scale != 1.0:
        cfg = scaled_config(cfg, scale)
    spec = RunSpec(workload=cfg, n_devices=n_devices, name=preset)

    comparison = MetricsComparison(
        preset=preset, workload=cfg, n_devices=n_devices, n_batches=n_batches
    )
    for backend in backends:
        emb = DistributedEmbedding.from_spec(spec, backend=backend)
        gen = SyntheticDataGenerator(cfg)
        total = PhaseTiming()
        for _ in range(n_batches):
            total.add(emb.forward_timed(gen.lengths_batch()))
        comparison.reports[backend] = emb.telemetry_report(
            timing=total,
            workload=cfg,
            n_bins=n_bins,
            include_series=include_series,
            meta={"preset": preset, "scale": scale, "n_batches": n_batches},
        )
    return comparison
