"""Serving sweep: continuous-batching goodput across (backend, QPS, K, policy).

For each grid point the sweep builds a fresh pipeline from one
:class:`~repro.core.runspec.RunSpec`, serves a Poisson request stream
through the continuous-batching scheduler, and records the
:class:`~repro.core.serving.ServingResult` — latency percentiles, the
form/queue/execute segment means, goodput, and the interconnect-idle
time the extra in-flight batches exist to reclaim.

The rendered table answers the scheduler's motivating question directly:
at a saturating arrival rate, does keeping K=2 batches in flight raise
goodput and shrink the inter-batch interconnect bubble relative to the
sequential K=1 server — and by how much per backend?  ``write_json``
emits ``BENCH_serving.json`` for the CI serve-smoke gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.runspec import RunSpec, preset_runspec
from ..core.serving import InferenceServer, SchedulerSpec, ServingResult, ServingSpec
from ..simgpu.units import ms
from .reporting import format_table
from .validate import check_artifact, check_point

__all__ = [
    "ServeSweepPoint",
    "ServeSweepResult",
    "run_serve_sweep",
    "validate_servesweep_json",
]


@dataclass(frozen=True)
class ServeSweepPoint:
    """One (backend, QPS, max_in_flight, policy) serving measurement."""

    backend: str
    arrival_qps: float
    max_in_flight: int
    policy: str
    result: ServingResult

    @property
    def idle_share(self) -> float:
        """Interconnect-idle time as a share of the serving window."""
        if self.result.sim_duration_ns <= 0:
            return 0.0
        return self.result.interconnect_idle_ns / self.result.sim_duration_ns

    def as_dict(self) -> Dict[str, Any]:
        """Grid coordinates plus the full result payload."""
        return {
            "backend": self.backend,
            "arrival_qps": float(self.arrival_qps),
            "max_in_flight": self.max_in_flight,
            "policy": self.policy,
            "idle_share": self.idle_share,
            "result": self.result.as_dict(),
        }


@dataclass
class ServeSweepResult:
    """A finished serving sweep."""

    preset: str
    n_devices: int
    n_requests: int
    max_batch: int
    batch_window_ns: float
    points: List[ServeSweepPoint] = field(default_factory=list)

    def point(
        self, backend: str, qps: float, k: int, policy: str = "hybrid"
    ) -> ServeSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if (
                p.backend == backend
                and p.arrival_qps == qps
                and p.max_in_flight == k
                and p.policy == policy
            ):
                return p
        raise KeyError(f"no point ({backend}, {qps}, K={k}, {policy})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            r = p.result
            served = r.n_requests > 0
            rows.append(
                [
                    p.backend,
                    f"{p.arrival_qps:,.0f}",
                    f"{p.max_in_flight}",
                    p.policy,
                    f"{r.n_requests}/{r.n_offered}",
                    f"{r.mean_batch_size:.1f}",
                    f"{r.p50_ms:.3f}" if served else "-",
                    f"{r.p99_ms:.3f}" if served else "-",
                    f"{r.mean_form_ns / ms:.3f}",
                    f"{r.mean_queue_ns / ms:.3f}",
                    f"{r.mean_execute_ns / ms:.3f}",
                    f"{r.goodput_qps:,.0f}",
                    f"{p.idle_share:.1%}",
                ]
            )
        title = (
            f"[serve sweep: {self.preset} preset, {self.n_devices} GPUs, "
            f"{self.n_requests} requests/point, max batch {self.max_batch}, "
            f"window {self.batch_window_ns / ms:.2f} ms]"
        )
        return title + "\n" + format_table(
            [
                "backend",
                "qps",
                "K",
                "policy",
                "served",
                "batch",
                "p50 (ms)",
                "p99 (ms)",
                "form",
                "queue",
                "exec",
                "goodput",
                "net idle",
            ],
            rows,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_serving.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_requests": self.n_requests,
            "max_batch": self.max_batch,
            "batch_window_ns": float(self.batch_window_ns),
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


def validate_servesweep_json(data: Any) -> None:
    """Validate a ``BENCH_serving.json`` payload (raises ``ValueError``)."""
    points = check_artifact(
        data,
        kind="serving",
        schema_version=1,
        required_keys=(
            "schema_version", "preset", "n_devices", "n_requests",
            "max_batch", "batch_window_ns",
        ),
    )
    for i, point in enumerate(points):
        check_point(
            point, i, ("backend", "arrival_qps", "max_in_flight", "policy", "result")
        )
        result = point["result"]
        if not isinstance(result, dict):
            raise ValueError(f"point {i} result must be a dict")
        for key in ("goodput_qps", "interconnect_idle_ns", "formed_by", "n_requests"):
            if key not in result:
                raise ValueError(f"point {i} result missing key {key!r}")
        if point["max_in_flight"] != result["max_in_flight"]:
            raise ValueError(f"point {i}: max_in_flight disagrees with its result")


def run_serve_sweep(
    preset: str = "tiny",
    *,
    n_devices: int = 2,
    backends: Sequence[str] = ("pgas", "baseline"),
    qps: Sequence[float] = (200_000.0,),
    max_in_flight: Sequence[int] = (1, 2),
    policies: Sequence[str] = ("hybrid",),
    n_requests: int = 32,
    max_batch: int = 8,
    batch_window_ns: float = 0.1 * ms,
    deadline_ns: Optional[float] = None,
    queue_limit: Optional[int] = None,
    seed: int = 0,
) -> ServeSweepResult:
    """Serve a request stream at every (backend, QPS, K, policy) point.

    Every point gets a *fresh* pipeline (its own cluster, so profiler
    records and stream queues never leak between points) built from one
    :class:`RunSpec`, and identical seeds — the grid coordinates are the
    only thing changing between rows.
    """
    if not backends or not qps or not max_in_flight or not policies:
        raise ValueError("every sweep axis needs at least one value")
    base_spec = preset_runspec(preset, n_devices)
    sweep = ServeSweepResult(
        preset=preset,
        n_devices=n_devices,
        n_requests=n_requests,
        max_batch=max_batch,
        batch_window_ns=batch_window_ns,
    )
    for backend in backends:
        for rate in qps:
            for policy in policies:
                for k in max_in_flight:
                    spec = RunSpec(
                        workload=base_spec.workload,
                        n_devices=n_devices,
                        backend=backend,
                        name=preset,
                        serving=ServingSpec(
                            arrival_qps=rate,
                            max_batch=max_batch,
                            batch_window_ns=batch_window_ns,
                            seed=seed,
                            deadline_ns=deadline_ns,
                            queue_limit=queue_limit,
                            scheduler=SchedulerSpec(max_in_flight=k, policy=policy),
                        ),
                    )
                    server = InferenceServer.from_spec(spec)
                    result = server.simulate(n_requests)
                    sweep.points.append(
                        ServeSweepPoint(
                            backend=backend,
                            arrival_qps=rate,
                            max_in_flight=k,
                            policy=policy,
                            result=result,
                        )
                    )
    return sweep
