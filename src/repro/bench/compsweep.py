"""Compression sweep: codec × backend × batch size wire/time/error grid.

For each grid point the sweep builds a fresh ``<base>+compress``
:class:`~repro.core.retrieval.DistributedEmbedding` (its own cluster, so
profiler counters never mix), replays the *identical* synthetic batch
stream through the timed path, and records:

* **bytes** — exact remote payload before/after the codec (from
  :meth:`~repro.compress.CompressedRetrieval.wire_bytes_for`) and the
  resulting compression ratio;
* **time** — the phase breakdown plus the modelled encode/decode kernel
  time (``compress.encode_ns`` / ``compress.decode_ns`` counters);
* **error** — a measured codec round-trip on synthetic pooled vectors
  (:func:`~repro.compress.roundtrip_error_report`): ``max_abs_error``,
  ``rmse``, the per-row bound, and whether the measurement respects it.

``write_json`` emits ``BENCH_compression.json`` for the CI
compress-smoke gate; :func:`validate_compsweep_json` is the self-check —
it enforces the physical invariants (wire ≤ uncompressed, fp32 exact and
byte-identical, every point within its error bound, ``int8`` beating
``fp32`` on wire bytes and on baseline comm time wherever both ran).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..compress import CODEC_NAMES, CompressionSpec, make_codec, roundtrip_error_report
from ..core.baseline import PhaseTiming
from ..core.factory import FeatureSpec
from ..core.retrieval import DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator
from ..simgpu.units import to_ms, us
from .reporting import format_table
from .runner import scaled_config
from .telemetry import preset_workload
from .validate import check_artifact, check_point

__all__ = [
    "CompSweepPoint",
    "CompSweepResult",
    "run_comp_sweep",
    "validate_compsweep_json",
]


@dataclass(frozen=True)
class CompSweepPoint:
    """One (codec, backend, batch size) measurement."""

    codec: str
    backend: str  #: base backend the "+compress" wrapper fronted
    batch_size: int
    n_batches: int
    total_ns: float
    compute_ns: float
    comm_ns: float
    sync_unpack_ns: float
    encode_ns: float
    decode_ns: float
    wire_bytes: float
    uncompressed_bytes: float
    max_abs_error: float
    rmse: float
    error_bound: float
    within_bound: bool

    @property
    def compression_ratio(self) -> float:
        """Uncompressed / on-wire remote payload bytes."""
        if self.wire_bytes <= 0:
            return 1.0
        return self.uncompressed_bytes / self.wire_bytes

    def as_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["compression_ratio"] = self.compression_ratio
        return payload


@dataclass
class CompSweepResult:
    """A finished compression sweep."""

    preset: str
    n_devices: int
    n_batches: int
    points: List[CompSweepPoint] = field(default_factory=list)

    def point(self, codec: str, backend: str, batch_size: int) -> CompSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if p.codec == codec and p.backend == backend and p.batch_size == batch_size:
                return p
        raise KeyError(f"no point ({codec}, {backend}, B={batch_size})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.codec,
                    p.backend,
                    f"{p.batch_size}",
                    f"{to_ms(p.total_ns):.3f}",
                    f"{to_ms(p.compute_ns):.3f}",
                    f"{to_ms(p.comm_ns):.3f}",
                    f"{to_ms(p.sync_unpack_ns):.3f}",
                    f"{p.encode_ns / us:.1f}",
                    f"{p.decode_ns / us:.1f}",
                    f"{p.wire_bytes / 1e6:.3f}",
                    f"{p.compression_ratio:.2f}x",
                    f"{p.max_abs_error:.2e}" if p.codec != "fp32" else "exact",
                ]
            )
        title = (
            f"[compression sweep: {self.preset} preset, {self.n_devices} GPUs, "
            f"{self.n_batches} batches/point]"
        )
        return title + "\n" + format_table(
            [
                "codec",
                "backend",
                "batch",
                "total (ms)",
                "compute",
                "comm",
                "sync+unpack",
                "enc (us)",
                "dec (us)",
                "wire (MB)",
                "ratio",
                "max err",
            ],
            rows,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_compression.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


_POINT_KEYS = (
    "codec", "backend", "batch_size", "n_batches", "total_ns", "compute_ns",
    "comm_ns", "sync_unpack_ns", "encode_ns", "decode_ns", "wire_bytes",
    "uncompressed_bytes", "compression_ratio", "max_abs_error", "rmse",
    "error_bound", "within_bound",
)


def validate_compsweep_json(data: Any) -> None:
    """Validate a ``BENCH_compression.json`` payload (raises ``ValueError``).

    Beyond shape, this enforces the invariants the artifact exists to
    witness: measured error within each codec's bound, fp32 exact *and*
    paying zero extra wire bytes, lossy codecs never exceeding the fp32
    footprint, and — wherever both codecs ran on the same (backend,
    batch) — ``int8`` on the wire strictly under ``fp32``, with the
    baseline's modelled comm time shrinking accordingly.
    """
    points = check_artifact(
        data,
        kind="compression",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_devices", "n_batches"),
    )
    groups: Dict[tuple, Dict[str, Dict[str, Any]]] = {}
    for i, point in enumerate(points):
        check_point(point, i, _POINT_KEYS)
        if not point["within_bound"]:
            raise ValueError(
                f"point {i} ({point['codec']}, {point['backend']}): "
                f"measured error {point['max_abs_error']} exceeds the codec bound"
            )
        if point["wire_bytes"] > point["uncompressed_bytes"]:
            raise ValueError(
                f"point {i}: wire bytes exceed the uncompressed payload"
            )
        if point["codec"] == "fp32":
            if point["wire_bytes"] != point["uncompressed_bytes"]:
                raise ValueError(f"point {i}: fp32 must be wire-identical")
            if point["max_abs_error"] != 0.0:
                raise ValueError(f"point {i}: fp32 must be exact")
        if point["wire_bytes"] > 0:
            expect = point["uncompressed_bytes"] / point["wire_bytes"]
            if abs(point["compression_ratio"] - expect) > 1e-6 * expect:
                raise ValueError(
                    f"point {i}: compression_ratio disagrees with its byte counts"
                )
        groups.setdefault((point["backend"], point["batch_size"]), {})[
            point["codec"]
        ] = point
    for (backend, batch), by_codec in groups.items():
        fp32 = by_codec.get("fp32")
        int8 = by_codec.get("int8")
        if fp32 is None or int8 is None:
            continue
        if not int8["wire_bytes"] < fp32["wire_bytes"]:
            raise ValueError(
                f"({backend}, B={batch}): int8 wire bytes must undercut fp32"
            )
        if backend == "baseline" and fp32["comm_ns"] > 0:
            if not int8["comm_ns"] < fp32["comm_ns"]:
                raise ValueError(
                    f"({backend}, B={batch}): int8 must shrink the modelled "
                    f"all-to-all time"
                )


def run_comp_sweep(
    preset: str = "tiny",
    *,
    n_devices: int = 2,
    codecs: Sequence[str] = CODEC_NAMES,
    bases: Sequence[str] = ("pgas", "baseline"),
    batch_sizes: Optional[Sequence[int]] = None,
    n_batches: int = 2,
    scale: float = 1.0,
    error_rows: int = 512,
    seed: Optional[int] = None,
) -> CompSweepResult:
    """Measure every (codec, base backend, batch size) grid point.

    Every point gets a fresh embedding (its own cluster) but an identical
    batch stream — the grid coordinates are the only thing changing
    between rows.  The timed path never materialises weights, so the
    ``strong`` preset's paper-scale tables run fine; quantisation error is
    measured separately on ``error_rows`` synthetic pooled vectors per
    codec (real encode/decode, zero rows for fp32).
    """
    if not codecs or not bases:
        raise ValueError("every sweep axis needs at least one value")
    for base in bases:
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r}")
    base_cfg = preset_workload(preset, n_devices)
    if seed is not None:
        base_cfg = dataclasses.replace(base_cfg, seed=seed)
    if scale != 1.0:
        base_cfg = scaled_config(base_cfg, scale)
    sizes = list(batch_sizes) if batch_sizes else [base_cfg.batch_size]

    # Measured round-trip error per codec on synthetic pooled vectors with
    # per-row magnitudes spread over two decades (absmax-scaled codecs see
    # heterogeneous rows, not one flat scale).
    rng = np.random.default_rng(base_cfg.seed)
    rows = (
        rng.standard_normal((error_rows, base_cfg.dim))
        * rng.uniform(0.01, 1.0, size=(error_rows, 1))
    ).astype(np.float32)
    error_reports = {
        codec: roundtrip_error_report(make_codec(codec), rows) for codec in codecs
    }

    sweep = CompSweepResult(preset=preset, n_devices=n_devices, n_batches=n_batches)
    for bs in sizes:
        cfg = base_cfg.with_batch_size(bs) if bs != base_cfg.batch_size else base_cfg
        for base in bases:
            for codec in codecs:
                emb = DistributedEmbedding(
                    cfg,
                    n_devices,
                    backend=f"{base}+compress",
                    features=FeatureSpec(compression=CompressionSpec(codec=codec)),
                )
                adapter = emb.backend_adapter(f"{base}+compress")
                gen = SyntheticDataGenerator(cfg)
                total = PhaseTiming()
                raw_bytes = 0.0
                wire_bytes = 0.0
                for _ in range(n_batches):
                    workloads = emb.build_workloads(gen.lengths_batch())
                    raw, wire = adapter.wire_bytes_for(workloads)
                    raw_bytes += raw
                    wire_bytes += wire
                    total.add(adapter.run_timed(workloads))
                counters = emb.cluster.profiler.counters
                err = error_reports[codec]
                sweep.points.append(
                    CompSweepPoint(
                        codec=codec,
                        backend=base,
                        batch_size=cfg.batch_size,
                        n_batches=n_batches,
                        total_ns=total.total_ns,
                        compute_ns=total.compute_ns,
                        comm_ns=total.comm_ns,
                        sync_unpack_ns=total.sync_unpack_ns,
                        encode_ns=(
                            float(counters["compress.encode_ns"].total)
                            if "compress.encode_ns" in counters
                            else 0.0
                        ),
                        decode_ns=(
                            float(counters["compress.decode_ns"].total)
                            if "compress.decode_ns" in counters
                            else 0.0
                        ),
                        wire_bytes=wire_bytes,
                        uncompressed_bytes=raw_bytes,
                        max_abs_error=err["max_abs_error"],
                        rmse=err["rmse"],
                        error_bound=err["error_bound"],
                        within_bound=err["within_bound"],
                    )
                )
    return sweep
