"""Markdown report generation — the EXPERIMENTS.md machinery.

``build_report(runner)`` renders a complete paper-vs-measured markdown
document from a finished :class:`~repro.bench.runner.ExperimentRunner`:
the two speedup tables, both scaling-factor figures, both breakdowns, and
the comm-volume summaries, each next to the paper's published values.
``python -m repro reproduce`` prints text; this module is for committing
a refreshed report after calibration changes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..simgpu.units import to_ms
from .breakdown import BreakdownResult
from .commvolume import CommVolumeTrace
from .runner import ExperimentRunner
from .scaling import ScalingResult

__all__ = ["md_table", "scaling_section", "breakdown_section", "commvolume_section", "build_report"]

#: the paper's published speedups, for the side-by-side columns
PAPER_SPEEDUPS = {
    "weak": {2: 2.10, 3: 1.95, 4: 1.87},
    "strong": {2: 2.95, 3: 2.55, 4: 2.44},
}
PAPER_GEOMEANS = {"weak": 1.97, "strong": 2.63}


def md_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-flavoured markdown table."""
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def scaling_section(result: ScalingResult) -> str:
    """Speedup table + scaling factors for one sweep, vs the paper."""
    paper = PAPER_SPEEDUPS.get(result.kind, {})
    rows = []
    for g, speedup in sorted(result.speedup_table().items()):
        pval = f"{paper[g]:.2f}×" if g in paper else "—"
        rows.append([f"{g}", pval, f"{speedup:.2f}×"])
    geo_p = PAPER_GEOMEANS.get(result.kind)
    rows.append([
        "geomean",
        f"**{geo_p:.2f}×**" if geo_p else "—",
        f"**{result.geomean_speedup:.2f}×**",
    ])
    speedups = md_table(["GPUs", "paper", "measured"], rows)

    frows = []
    for g in result.device_counts:
        frows.append([
            f"{g}",
            f"{result.scaling_factor('baseline', g):.3f}",
            f"{result.scaling_factor('pgas', g):.3f}",
        ])
    factors = md_table(["GPUs", "baseline factor", "PGAS factor"], frows)
    title = "Weak" if result.kind == "weak" else "Strong"
    return (
        f"### {title}-scaling speedup (PGAS over baseline)\n\n{speedups}\n\n"
        f"### {title} scaling factors (t₁/t_G)\n\n{factors}"
    )


def breakdown_section(bd: BreakdownResult) -> str:
    """Per-GPU-count phase table in milliseconds."""
    rows = []
    for b in bd.bars:
        rows.append([
            f"{b.n_devices}",
            f"{to_ms(b.baseline_compute_ns):.1f}",
            f"{to_ms(b.baseline_comm_ns):.1f}",
            f"{to_ms(b.baseline_sync_unpack_ns):.1f}",
            f"{to_ms(b.baseline_total_ns):.1f}",
            f"{to_ms(b.pgas_total_ns):.1f}",
        ])
    fig = "Fig. 6" if bd.kind == "weak" else "Fig. 9"
    return f"### {fig} — runtime breakdown (ms)\n\n" + md_table(
        ["GPUs", "base compute", "base comm", "base sync+unpack",
         "base total", "PGAS total"],
        rows,
    )


def commvolume_section(traces: Sequence[CommVolumeTrace], fig: str) -> str:
    """Flat-prefix / duration summary of one comm-volume figure."""
    rows = []
    for tr in traces:
        rows.append([
            tr.backend,
            f"{tr.n_devices}",
            f"{tr.flat_prefix_fraction():.0%}",
            f"{to_ms(tr.total_ns):.2f}",
            f"{tr.total_units:,.0f}",
        ])
    return f"### {fig} — communication volume over time\n\n" + md_table(
        ["backend", "GPUs", "flat-at-zero prefix", "run (ms)", "volume (×256 B)"],
        rows,
    )


def build_report(runner: ExperimentRunner) -> str:
    """The full paper-vs-measured markdown document."""
    parts: List[str] = [
        "# Reproduction report — paper vs. measured",
        "",
        f"Protocol: {runner.n_batches} batches, batch-size scale "
        f"{runner.scale:g}, GPU counts {tuple(runner.device_counts)}.",
        "",
        "## Weak scaling (§IV-A)",
        "",
        scaling_section(runner.weak()),
        "",
        breakdown_section(runner.fig6()),
        "",
        commvolume_section(runner.fig7(), "Fig. 7 (2 GPUs, weak)"),
        "",
        "## Strong scaling (§IV-B)",
        "",
        scaling_section(runner.strong()),
        "",
        breakdown_section(runner.fig9()),
        "",
        commvolume_section(runner.fig10(), "Fig. 10 (4 GPUs, strong)"),
        "",
    ]
    return "\n".join(parts)
