"""``repro.bench`` — experiment harness.

Drivers and renderers that regenerate every table and figure of the
paper's evaluation section (see DESIGN.md §4 for the index).
"""

from .breakdown import BreakdownBar, BreakdownResult, breakdown_from_scaling
from .cachesweep import (
    CacheSweepPoint,
    CacheSweepResult,
    run_cache_sweep,
    serving_cache_comparison,
)
from .capacity import CapacityPoint, CapacityStudy, run_capacity_study
from .chaossweep import (
    ChaosSweepPoint,
    ChaosSweepResult,
    run_chaos_sweep,
    validate_chaossweep_json,
)
from .critpath import (
    CritPathPoint,
    CritPathResult,
    run_critpath,
    validate_critpath_json,
)
from .faultsweep import FaultSweepPoint, FaultSweepResult, run_fault_sweep
from .commvolume import CommVolumeTrace, UNIT_BYTES, trace_comm_volume
from .reporting import (
    ascii_series,
    format_table,
    render_breakdown,
    render_comm_volume,
    render_scaling_figure,
    render_speedup_table,
    to_csv,
)
from .overlap import OverlapReport, analyze_overlap, measure_overlap
from .report_md import build_report, md_table
from .runner import EXPERIMENT_IDS, ExperimentRunner, scaled_config
from .sweeps import (
    Sweep,
    SweepPoint,
    SweepResult,
    batch_size_sweep,
    pooling_sweep,
    table_count_sweep,
)
from .scaling import (
    ScalingPoint,
    ScalingResult,
    geomean,
    run_strong_scaling,
    run_weak_scaling,
)
from .servesweep import (
    ServeSweepPoint,
    ServeSweepResult,
    run_serve_sweep,
    validate_servesweep_json,
)
from .skewsweep import (
    SkewSweepPoint,
    SkewSweepResult,
    run_skew_sweep,
    validate_skewsweep_json,
)
from .telemetry import (
    MetricsComparison,
    preset_workload,
    run_metrics,
    validate_metrics_json,
)

__all__ = [
    "BreakdownBar",
    "CacheSweepPoint",
    "CacheSweepResult",
    "run_cache_sweep",
    "serving_cache_comparison",
    "CapacityPoint",
    "CapacityStudy",
    "run_capacity_study",
    "ChaosSweepPoint",
    "ChaosSweepResult",
    "run_chaos_sweep",
    "validate_chaossweep_json",
    "CritPathPoint",
    "CritPathResult",
    "run_critpath",
    "validate_critpath_json",
    "FaultSweepPoint",
    "FaultSweepResult",
    "run_fault_sweep",
    "MetricsComparison",
    "preset_workload",
    "run_metrics",
    "validate_metrics_json",
    "BreakdownResult",
    "CommVolumeTrace",
    "EXPERIMENT_IDS",
    "ExperimentRunner",
    "OverlapReport",
    "analyze_overlap",
    "measure_overlap",
    "ScalingPoint",
    "Sweep",
    "SweepPoint",
    "SweepResult",
    "batch_size_sweep",
    "pooling_sweep",
    "table_count_sweep",
    "ScalingResult",
    "ServeSweepPoint",
    "ServeSweepResult",
    "run_serve_sweep",
    "validate_servesweep_json",
    "SkewSweepPoint",
    "SkewSweepResult",
    "run_skew_sweep",
    "validate_skewsweep_json",
    "UNIT_BYTES",
    "ascii_series",
    "breakdown_from_scaling",
    "build_report",
    "md_table",
    "format_table",
    "geomean",
    "render_breakdown",
    "render_comm_volume",
    "render_scaling_figure",
    "render_speedup_table",
    "run_strong_scaling",
    "run_weak_scaling",
    "scaled_config",
    "to_csv",
    "trace_comm_volume",
]
