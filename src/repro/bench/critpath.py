"""Critical-path bench: per-backend path attribution and ``BENCH_critpath.json``.

Runs the same traced batch stream through each backend on a fresh cluster,
extracts the run-level and per-batch critical paths (DESIGN.md §13), and
renders where the bounding time went — compute, interconnect, unpack, or
idle — next to the first-order "what-if" headroom.  ``write_json`` emits
the artifact the CI regression gate (:mod:`repro.obs.regress`) diffs
against its committed baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.baseline import PhaseTiming
from ..core.retrieval import DistributedEmbedding
from ..core.runspec import RunSpec, preset_runspec
from ..dlrm.data import SyntheticDataGenerator
from ..obs import TraceSpec
from ..obs.critpath import critical_path_report
from ..simgpu.units import to_ms
from .reporting import format_table
from .runner import scaled_config
from .validate import check_artifact, check_point

__all__ = [
    "CritPathPoint",
    "CritPathResult",
    "run_critpath",
    "validate_critpath_json",
]

#: wall == path, by_category sums to path, per-batch wall == path: the
#: tiling is exact by construction, so only float summation noise is allowed
_REL_TOL = 1e-6


@dataclass
class CritPathPoint:
    """One backend's critical-path attribution over the shared batch stream."""

    backend: str
    n_batches: int
    wall_ns: float
    path_ns: float
    by_category: Dict[str, float]
    by_device: Dict[str, float]
    slack_min_ns: float
    slack_total_ns: float
    whatif: Dict[str, float]
    batches: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "n_batches": self.n_batches,
            "wall_ns": float(self.wall_ns),
            "path_ns": float(self.path_ns),
            "by_category": {k: float(v) for k, v in self.by_category.items()},
            "by_device": {k: float(v) for k, v in self.by_device.items()},
            "slack_min_ns": float(self.slack_min_ns),
            "slack_total_ns": float(self.slack_total_ns),
            "whatif": {k: float(v) for k, v in self.whatif.items()},
            "batches": self.batches,
        }


@dataclass
class CritPathResult:
    """All backends' points for one preset, plus the artifact form."""

    preset: str
    n_devices: int
    n_batches: int
    points: List[CritPathPoint] = field(default_factory=list)

    def point(self, backend: str) -> CritPathPoint:
        for p in self.points:
            if p.backend == backend:
                return p
        raise KeyError(f"no critpath point for backend {backend!r}")

    def render(self) -> str:
        """Per-backend path breakdown as a text table (times in ms)."""
        categories = sorted({c for p in self.points for c in p.by_category})
        headers = ["backend", "wall (ms)"] + [f"{c} (ms)" for c in categories] + [
            "top what-if"
        ]
        rows: List[List[str]] = []
        for p in self.points:
            row = [p.backend, f"{to_ms(p.wall_ns):.3f}"]
            for c in categories:
                ns = p.by_category.get(c, 0.0)
                row.append(f"{to_ms(ns):.3f}" if ns else "-")
            if p.whatif:
                best = min(p.whatif.items(), key=lambda kv: kv[1])
                label = best[0][len("zero_"):-len("_wall_ns")]
                row.append(f"-{label}: {to_ms(best[1]):.3f}")
            else:
                row.append("-")
            rows.append(row)
        title = (
            f"[critpath: {self.preset} preset, {self.n_devices} GPUs, "
            f"{self.n_batches} batch(es)]"
        )
        return f"{title}\n{format_table(headers, rows)}"

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_critpath.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


_POINT_KEYS = (
    "backend", "n_batches", "wall_ns", "path_ns", "by_category",
    "by_device", "slack_min_ns", "slack_total_ns", "whatif", "batches",
)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _REL_TOL * max(abs(a), abs(b), 1.0)


def validate_critpath_json(data: Any) -> None:
    """Validate a ``BENCH_critpath.json`` payload (raises ``ValueError``).

    Beyond shape, this enforces the invariants the artifact exists to
    witness: the critical path tiles the wall exactly (run-level and per
    batch), the category attribution sums to the path, per-span slack
    never went negative, every what-if headroom stays within ``[0, wall]``
    — and, when both backends ran on >= 2 devices, the baseline's path
    crosses the interconnect (``comm``) while the PGAS path never does
    (its transfers hide inside the fused kernel, the paper's core claim).
    """
    points = check_artifact(
        data,
        kind="critpath",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_devices", "n_batches"),
    )
    by_backend: Dict[str, Dict[str, Any]] = {}
    for i, point in enumerate(points):
        check_point(point, i, _POINT_KEYS)
        label = f"point {i} ({point['backend']})"
        if point["wall_ns"] <= 0:
            raise ValueError(f"{label}: degenerate wall time")
        if not _close(point["path_ns"], point["wall_ns"]):
            raise ValueError(
                f"{label}: critical path ({point['path_ns']}) does not tile "
                f"the wall ({point['wall_ns']})"
            )
        cat_sum = sum(point["by_category"].values())
        if not _close(cat_sum, point["path_ns"]):
            raise ValueError(
                f"{label}: category attribution ({cat_sum}) does not sum "
                f"to the path ({point['path_ns']})"
            )
        dev_sum = sum(point["by_device"].values())
        if not _close(dev_sum, point["path_ns"]):
            raise ValueError(
                f"{label}: device attribution ({dev_sum}) does not sum "
                f"to the path ({point['path_ns']})"
            )
        if point["slack_min_ns"] < 0:
            raise ValueError(f"{label}: negative per-span slack")
        for name, wall in point["whatif"].items():
            if not (0.0 <= wall <= point["wall_ns"] * (1.0 + _REL_TOL)):
                raise ValueError(
                    f"{label}: what-if {name} ({wall}) outside [0, wall]"
                )
        if not point["batches"]:
            raise ValueError(f"{label}: traced run must carry per-batch paths")
        for j, b in enumerate(point["batches"]):
            if not _close(b["path_ns"], b["wall_ns"]):
                raise ValueError(
                    f"{label} batch {j}: per-batch path does not tile its wall"
                )
        by_backend[point["backend"]] = point
    pgas = by_backend.get("pgas")
    baseline = by_backend.get("baseline")
    if pgas is not None and baseline is not None and data["n_devices"] >= 2:
        if baseline["by_category"].get("comm", 0.0) <= 0:
            raise ValueError(
                "baseline's critical path never crossed the interconnect"
            )
        if pgas["by_category"].get("comm", 0.0) != 0.0:
            raise ValueError(
                "pgas critical path carries an exposed comm phase; its "
                "transfers should hide inside the fused kernel"
            )


def run_critpath(
    preset: str = "tiny",
    *,
    n_devices: int = 2,
    backends: Sequence[str] = ("pgas", "baseline"),
    n_batches: int = 2,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> CritPathResult:
    """Trace every backend over the same batches and extract its paths.

    Each backend gets a fresh cluster (so profiler records never mix) with
    request tracing on (``obs=TraceSpec()``) and the identical batch
    stream; ``scale`` shrinks the batch dimension for quick runs.
    """
    if not backends:
        raise ValueError("need at least one backend")
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    cfg = preset_runspec(preset, n_devices).workload
    if seed is not None:
        import dataclasses

        cfg = dataclasses.replace(cfg, seed=seed)
    if scale != 1.0:
        cfg = scaled_config(cfg, scale)
    spec = RunSpec(workload=cfg, n_devices=n_devices, name=preset, obs=TraceSpec())

    result = CritPathResult(preset=preset, n_devices=n_devices, n_batches=n_batches)
    for backend in backends:
        emb = DistributedEmbedding.from_spec(spec, backend=backend)
        gen = SyntheticDataGenerator(cfg)
        timing = PhaseTiming()
        for _ in range(n_batches):
            timing.add(emb.forward_timed(gen.lengths_batch()))
        report = critical_path_report(emb.cluster.profiler)
        result.points.append(
            CritPathPoint(
                backend=backend,
                n_batches=n_batches,
                wall_ns=report["wall_ns"],
                path_ns=report["path_ns"],
                by_category=report["by_category"],
                by_device=report["by_device"],
                slack_min_ns=report["slack"]["min_ns"],
                slack_total_ns=report["slack"]["total_ns"],
                whatif=report["whatif"],
                batches=report["batches"],
            )
        )
    return result
