"""Shared shape checks for the ``BENCH_*.json`` artifacts.

Every bench artifact opens the same way — a dict with a pinned
``schema_version``, a handful of run-level keys, and a non-empty
collection of measurement points — and every per-bench validator used to
re-implement that prologue by hand.  :func:`check_artifact` and
:func:`check_point` centralise it: the per-bench validators keep only the
invariants that make their artifact *theirs* (availability conservation,
codec error bounds, critical-path = wall, ...), while the boilerplate and
its exact error messages live here once.

The message templates are load-bearing: CI greps for them and the bench
tests pin them, so the helpers reproduce the historical strings
verbatim.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence, Type

__all__ = ["check_artifact", "check_point"]


def check_artifact(
    data: Any,
    *,
    kind: str,
    schema_version: int,
    required_keys: Sequence[str],
    collection: str = "points",
    noun: str = "point",
    error: Type[Exception] = ValueError,
    collection_type: type = list,
) -> Any:
    """Check an artifact's common envelope; return its item collection.

    Raises ``error`` when ``data`` is not a dict, any of ``required_keys``
    (plus ``collection``) is missing, the ``schema_version`` does not
    match, or the collection is not a non-empty ``collection_type``.  The
    returned value is ``data[collection]`` so callers can iterate it
    directly.
    """
    if not isinstance(data, dict):
        raise error(f"{kind} artifact must be a dict")
    for key in (*required_keys, collection):
        if key not in data:
            raise error(f"{kind} artifact missing key {key!r}")
    if data["schema_version"] != schema_version:
        raise error(
            f"unsupported {kind} artifact schema_version {data['schema_version']}"
        )
    items = data[collection]
    if not isinstance(items, collection_type) or not items:
        raise error(f"{kind} artifact must carry >= 1 {noun}")
    return items


def check_point(
    point: Any,
    index: int,
    keys: Iterable[str],
    *,
    error: Type[Exception] = ValueError,
    label: str = "point",
) -> None:
    """Check one collection entry: a dict carrying every key in ``keys``."""
    if not isinstance(point, dict):
        raise error(f"{label} {index} must be a dict")
    for key in keys:
        if key not in point:
            raise error(f"{label} {index} missing key {key!r}")
