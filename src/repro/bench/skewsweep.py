"""Skew sweep: online resharding vs. static placement under table skew.

For each (backend, skew) grid point the sweep builds a fresh embedding
through :func:`~repro.core.factory.build_backend` (its own cluster, so
profiler counters and migration streams never mix), replays an identical
synthetic batch stream, and records:

* **imbalance** — max/mean per-device retrieval bytes over the whole
  run, evaluated under the *static* placement (``imbalance_before``) and
  under the final serving ownership (``imbalance_after``); for the static
  backends the two are the same number by construction;
* **latency** — total simulated time, per-batch p99, and the traced
  critical path's ``comm`` share, so a migration that balances traffic
  but stalls the foreground shows up;
* **migration traffic** — plans adopted, tables moved, migrated bytes
  and busy time from the ``reshard.*`` counters.

``write_json`` emits ``BENCH_reshard.json`` for the CI reshard-smoke
gate; :func:`validate_skewsweep_json` is the self-check — it enforces
the invariants the artifact exists to witness: static placement never
migrates, resharding never *worsens* the imbalance it observed, and
migration counters are self-consistent (moves ⇔ bytes ⇔ time).
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.baseline import PhaseTiming
from ..core.factory import build_backend, parse_backend_name
from ..core.runspec import RunSpec
from ..core.workload import table_segments
from ..dlrm.data import SyntheticDataGenerator
from ..obs import TraceSpec
from ..obs.critpath import critical_path_report
from ..reshard import ReshardSpec
from ..simgpu.units import to_ms
from .reporting import format_table
from .runner import scaled_config
from .telemetry import preset_workload
from .validate import check_artifact, check_point

__all__ = [
    "SkewSweepPoint",
    "SkewSweepResult",
    "run_skew_sweep",
    "validate_skewsweep_json",
]


def _device_traffic(
    traffic: Mapping[str, float], owners: Mapping[str, int], n_devices: int
) -> List[float]:
    per_device = [0.0] * n_devices
    for name, nbytes in traffic.items():
        per_device[owners[name]] += nbytes
    return per_device


def _imbalance(per_device: Sequence[float]) -> float:
    mean = sum(per_device) / len(per_device)
    if mean <= 0.0:
        return 1.0
    return max(per_device) / mean


@dataclass(frozen=True)
class SkewSweepPoint:
    """One (backend, table skew) measurement."""

    backend: str  #: full backend name ("pgas", "pgas+reshard", ...)
    skew_alpha: float  #: table traffic skew exponent (0 = uniform)
    n_batches: int
    total_ns: float
    p99_batch_ns: float
    comm_ns: float  #: PhaseTiming comm total (pgas folds comm into "fused" spans)
    critpath_comm_ns: float  #: traced critical-path "comm" category
    imbalance_before: float  #: max/mean device bytes under static placement
    imbalance_after: float  #: same traffic under the final serving ownership
    max_device_bytes_before: float
    max_device_bytes_after: float
    plans: float
    tables_moved: float
    migrations: float
    migration_bytes: float
    migration_ns: float
    advisories: float

    @property
    def imbalance_reduction(self) -> float:
        """Fractional drop in max-device traffic imbalance (0 = none)."""
        if self.imbalance_before <= 0.0:
            return 0.0
        return 1.0 - self.imbalance_after / self.imbalance_before

    def as_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["imbalance_reduction"] = self.imbalance_reduction
        return payload


@dataclass
class SkewSweepResult:
    """A finished skew sweep."""

    preset: str
    n_devices: int
    n_batches: int
    points: List[SkewSweepPoint] = field(default_factory=list)

    def point(self, backend: str, skew_alpha: float) -> SkewSweepPoint:
        """Look up one measured grid point."""
        for p in self.points:
            if p.backend == backend and p.skew_alpha == skew_alpha:
                return p
        raise KeyError(f"no point ({backend}, skew={skew_alpha})")

    def render(self) -> str:
        """Text table of the sweep."""
        rows = []
        for p in self.points:
            rows.append(
                [
                    p.backend,
                    f"{p.skew_alpha:g}",
                    f"{to_ms(p.total_ns):.3f}",
                    f"{to_ms(p.p99_batch_ns):.4f}",
                    f"{to_ms(p.comm_ns):.3f}",
                    f"{to_ms(p.critpath_comm_ns):.3f}",
                    f"{p.imbalance_before:.3f}",
                    f"{p.imbalance_after:.3f}",
                    f"{100.0 * p.imbalance_reduction:.1f}%",
                    f"{int(p.tables_moved)}",
                    f"{p.migration_bytes / 1e6:.3f}",
                ]
            )
        title = (
            f"[skew sweep: {self.preset} preset, {self.n_devices} GPUs, "
            f"{self.n_batches} batches/point]"
        )
        return title + "\n" + format_table(
            [
                "backend",
                "skew",
                "total (ms)",
                "p99 (ms)",
                "comm (ms)",
                "cp comm (ms)",
                "imb before",
                "imb after",
                "reduction",
                "moved",
                "migrated (MB)",
            ],
            rows,
        )

    def as_dict(self) -> Dict[str, Any]:
        """The ``BENCH_reshard.json`` payload."""
        return {
            "schema_version": 1,
            "preset": self.preset,
            "n_devices": self.n_devices,
            "n_batches": self.n_batches,
            "points": [p.as_dict() for p in self.points],
        }

    def write_json(self, path: str, *, indent: int = 1) -> None:
        """Write the canonical artifact (sorted keys, schema-valid)."""
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, sort_keys=True, indent=indent)


_POINT_KEYS = (
    "backend", "skew_alpha", "n_batches", "total_ns", "p99_batch_ns",
    "comm_ns", "critpath_comm_ns", "imbalance_before", "imbalance_after",
    "max_device_bytes_before", "max_device_bytes_after", "plans",
    "tables_moved", "migrations", "migration_bytes", "migration_ns",
    "advisories", "imbalance_reduction",
)


def validate_skewsweep_json(data: Any) -> None:
    """Validate a ``BENCH_reshard.json`` payload (raises ``ValueError``).

    Beyond shape, this enforces the resharding invariants: every
    imbalance is a max/mean (>= 1), static backends never migrate and
    never change ownership (before == after), resharding backends never
    worsen the imbalance they observed, migration counters are
    self-consistent (completed migrations move bytes and take time), and
    — for every skew level where both ran — the ``+reshard`` point's
    observed traffic matches its static twin's, so the before/after
    comparison is apples to apples.
    """
    points = check_artifact(
        data,
        kind="reshard",
        schema_version=1,
        required_keys=("schema_version", "preset", "n_devices", "n_batches"),
    )
    by_pair: Dict[Any, Dict[bool, Dict[str, Any]]] = {}
    for i, point in enumerate(points):
        check_point(point, i, _POINT_KEYS)
        label = f"point {i} ({point['backend']}, skew={point['skew_alpha']})"
        for key in ("imbalance_before", "imbalance_after"):
            if not math.isfinite(point[key]) or point[key] < 1.0 - 1e-9:
                raise ValueError(f"{label}: {key} must be a finite max/mean >= 1")
        if point["total_ns"] <= 0 or point["p99_batch_ns"] <= 0:
            raise ValueError(f"{label}: degenerate timing")
        resharded = "+reshard" in point["backend"]
        if not resharded:
            if point["migrations"] or point["migration_bytes"] or point["plans"]:
                raise ValueError(f"{label}: static backend moved migration traffic")
            if point["imbalance_after"] != point["imbalance_before"]:
                raise ValueError(f"{label}: static backend changed ownership")
        else:
            if point["imbalance_after"] > point["imbalance_before"] + 1e-9:
                raise ValueError(
                    f"{label}: resharding worsened imbalance "
                    f"({point['imbalance_before']:.4f} -> "
                    f"{point['imbalance_after']:.4f})"
                )
            if (point["migrations"] > 0) != (point["migration_bytes"] > 0):
                raise ValueError(f"{label}: migrations and migrated bytes disagree")
            if point["migrations"] > 0 and point["migration_ns"] <= 0:
                raise ValueError(f"{label}: migrations completed in zero time")
            if point["tables_moved"] > point["migrations"]:
                raise ValueError(f"{label}: more tables moved than migrations ran")
        base = str(point["backend"]).split("+", 1)[0]
        by_pair.setdefault((base, float(point["skew_alpha"])), {})[resharded] = point
    for (base, skew), pair in by_pair.items():
        static = pair.get(False)
        dynamic = pair.get(True)
        if static is None or dynamic is None:
            continue
        if abs(static["imbalance_before"] - dynamic["imbalance_before"]) > 1e-6:
            raise ValueError(
                f"({base}, skew={skew}): static and +reshard saw different "
                f"traffic ({static['imbalance_before']:.6f} vs "
                f"{dynamic['imbalance_before']:.6f})"
            )


def run_skew_sweep(
    preset: str = "tiny",
    *,
    n_devices: int = 4,
    backends: Sequence[str] = (
        "pgas", "pgas+reshard", "baseline", "baseline+reshard",
    ),
    skews: Sequence[float] = (0.0, 1.05),
    n_batches: int = 10,
    reshard_spec: Optional[ReshardSpec] = None,
    scale: float = 1.0,
    seed: Optional[int] = None,
) -> SkewSweepResult:
    """Measure every (backend, table skew) grid point.

    Every point gets a fresh embedding built through
    :func:`~repro.core.factory.build_backend` but an identical batch
    stream: the generator is re-seeded per point and ``skew_alpha``
    only rescales per-table lengths post-draw, so a ``+reshard`` point
    and its static twin observe byte-identical traffic and their
    imbalance columns compare the *placement*, nothing else.
    """
    if not backends or not skews:
        raise ValueError("every sweep axis needs at least one value")
    for name in backends:
        parse_backend_name(str(name))
    if n_batches < 1:
        raise ValueError("need at least one batch per point")
    base_cfg = preset_workload(preset, n_devices)
    if seed is not None:
        base_cfg = dataclasses.replace(base_cfg, seed=seed)
    if scale != 1.0:
        base_cfg = scaled_config(base_cfg, scale)
    if reshard_spec is None:
        # Tuned for short sweeps: plan early and often, keep the default
        # migration pacing so foreground batches still see the link.
        reshard_spec = ReshardSpec(
            window_batches=max(4, n_batches // 2),
            min_batches=2,
            check_interval_batches=2,
            imbalance_threshold=1.1,
        )

    sweep = SkewSweepResult(preset=preset, n_devices=n_devices, n_batches=n_batches)
    for backend in backends:
        resharded = "+reshard" in backend
        for skew in skews:
            cfg = base_cfg
            if skew:
                cfg = dataclasses.replace(cfg, table_skew_alpha=float(skew))
            # Tracing is on so the critical path decomposes into
            # compute/comm/sync categories; it changes attribution, not
            # timing, so the skew comparison is unaffected.
            runspec = RunSpec(
                cfg,
                n_devices=n_devices,
                backend=backend,
                reshard=reshard_spec if resharded else None,
                obs=TraceSpec(),
            )
            emb = build_backend(runspec)
            adapter = emb.backend_adapter()
            gen = SyntheticDataGenerator(cfg)
            static_owners = {
                tc.name: emb.plan.owner_of(tc.name) for tc in emb.plan.table_configs
            }
            row_bytes = {tc.name: tc.row_bytes for tc in emb.plan.table_configs}
            traffic: Dict[str, float] = defaultdict(float)
            total = PhaseTiming()
            batch_ns: List[float] = []
            for _ in range(n_batches):
                lengths = gen.lengths_batch()
                workloads = emb.build_workloads(lengths)
                for name, seg in table_segments(emb.plan, workloads).items():
                    traffic[name] += float(seg[2]) * row_bytes[name]
                # forward_timed (not adapter.run_timed) so the batch runs
                # inside the trace scope and spans get category labels.
                timing = emb.forward_timed(lengths)
                total.add(timing)
                batch_ns.append(timing.total_ns)
            if resharded:
                adapter.wait_for_migrations(
                    limit_ns=emb.cluster.engine.now + 1e9
                )
            final_owners = adapter.owners if resharded else static_owners
            before = _device_traffic(traffic, static_owners, n_devices)
            after = _device_traffic(traffic, final_owners, n_devices)
            counters = emb.cluster.profiler.counters

            def counter_total(name: str) -> float:
                c = counters.get(name)
                return float(c.total) if c is not None else 0.0

            report = critical_path_report(emb.cluster.profiler)
            sweep.points.append(
                SkewSweepPoint(
                    backend=str(backend),
                    skew_alpha=float(skew),
                    n_batches=n_batches,
                    total_ns=total.total_ns,
                    p99_batch_ns=float(np.percentile(batch_ns, 99.0)),
                    comm_ns=total.comm_ns,
                    critpath_comm_ns=float(
                        report["by_category"].get("comm", 0.0)
                    ),
                    imbalance_before=_imbalance(before),
                    imbalance_after=_imbalance(after),
                    max_device_bytes_before=max(before),
                    max_device_bytes_after=max(after),
                    plans=counter_total("reshard.plans"),
                    tables_moved=(
                        float(len(adapter.moved_tables())) if resharded else 0.0
                    ),
                    migrations=counter_total("reshard.migrations"),
                    migration_bytes=counter_total("reshard.migration_bytes"),
                    migration_ns=counter_total("reshard.migration_ns"),
                    advisories=counter_total("reshard.advisories"),
                )
            )
    return sweep
