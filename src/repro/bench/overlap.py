"""Overlap analysis: how much communication actually hid under compute.

The paper argues its speedup comes from overlap; this module measures it
directly from a run's profiler record, rather than inferring it from end
times:

* ``hidden_fraction`` — the share of delivered communication volume whose
  delivery instant fell inside a compute (kernel) span.  ~1.0 for PGAS on
  NVLink (messages drain while waves execute), ~0.0 for the baseline
  (all traffic lands in the dedicated comm phase).
* ``exposed_comm_ns`` — wall time during which the fabric was active but
  no kernel was running: the communication actually *paid for* in
  latency.

These power the overlap ablation and give users a one-number diagnostic
for their own configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..comm.pgas import PGASContext
from ..core.retrieval import BackendName, DistributedEmbedding
from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from ..simgpu.interconnect import Interconnect
from ..simgpu.profiler import Profiler

__all__ = ["OverlapReport", "analyze_overlap", "measure_overlap"]

#: span categories that count as "compute is running"
COMPUTE_CATEGORIES = ("compute", "fused")


def _merged_intervals(profiler: Profiler, categories: Sequence[str]) -> List[Tuple[float, float]]:
    spans = sorted(
        (s for s in profiler.spans if s.category in categories),
        key=lambda s: s.t_start,
    )
    merged: List[Tuple[float, float]] = []
    for s in spans:
        if merged and s.t_start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], s.t_end))
        else:
            merged.append((s.t_start, s.t_end))
    return merged


@dataclass(frozen=True)
class OverlapReport:
    """Volume- and time-based overlap metrics of one run."""

    total_comm_bytes: float
    hidden_comm_bytes: float
    compute_wall_ns: float
    run_wall_ns: float

    @property
    def hidden_fraction(self) -> float:
        """Share of communication volume delivered during compute."""
        if self.total_comm_bytes <= 0:
            return 1.0
        return self.hidden_comm_bytes / self.total_comm_bytes

    @property
    def exposed_comm_bytes(self) -> float:
        """Bytes delivered outside any compute span."""
        return self.total_comm_bytes - self.hidden_comm_bytes

    def summary(self) -> str:
        """One-line result."""
        return (
            f"{self.hidden_fraction:.1%} of {self.total_comm_bytes:,.0f} comm bytes "
            f"hidden under {self.compute_wall_ns / 1e6:.2f} ms of compute "
            f"(run {self.run_wall_ns / 1e6:.2f} ms)"
        )


def analyze_overlap(profiler: Profiler) -> OverlapReport:
    """Compute overlap metrics from an already-recorded profiler."""
    intervals = _merged_intervals(profiler, COMPUTE_CATEGORIES)
    compute_wall = sum(hi - lo for lo, hi in intervals)
    total = 0.0
    hidden = 0.0
    for name in (Interconnect.COUNTER, PGASContext.COUNTER):
        counter = profiler.counters.get(name)
        if counter is None:
            continue
        for t, delta in counter.events():
            total += delta
            for lo, hi in intervals:
                if lo <= t <= hi:
                    hidden += delta
                    break
    run_end = max((s.t_end for s in profiler.spans), default=0.0)
    run_start = min((s.t_start for s in profiler.spans), default=0.0)
    return OverlapReport(
        total_comm_bytes=total,
        hidden_comm_bytes=hidden,
        compute_wall_ns=compute_wall,
        run_wall_ns=run_end - run_start,
    )


def measure_overlap(
    config: WorkloadConfig,
    n_devices: int,
    backend: BackendName,
    *,
    seed: int = 2024,
) -> OverlapReport:
    """Run one batch of ``config`` and analyse its overlap."""
    emb = DistributedEmbedding(config, n_devices, backend=backend)
    lengths = SyntheticDataGenerator(config).lengths_batch()
    emb.forward_timed(lengths)
    return analyze_overlap(emb.cluster.profiler)
