"""PGAS one-sided GPU communication (NVSHMEM-style), the paper's scheme.

The programming model of Listing 2: a CUDA thread that has finished pooling
an embedding vector writes it *directly* to the output array — locally if
the sample belongs to the local mini-batch, remotely via a one-sided RDMA
write otherwise.  No collective call, no packing, no staging buffer.

This module models that with three pieces:

* :class:`SymmetricHeap` — lockstep allocation across all devices, so a
  buffer has the same "address" (offset) everywhere; remote writes name
  ``(peer, offset)`` exactly like NVSHMEM's symmetric objects.
* :meth:`PGASContext.put` — non-blocking one-sided write of a payload that
  is carried as many small messages (default 256 B — one d=64 fp32
  embedding vector per message, the paper's counter unit) each paying a
  header; injected into the interconnect *at the simulated instant the
  kernel wave retires*, which is what produces the fine-grained overlap.
* :meth:`PGASContext.quiet` / :meth:`PGASContext.barrier_all` — NVSHMEM
  completion semantics: ``quiet`` drains a PE's outstanding puts,
  ``barrier_all`` synchronises everyone.

``atomic_add`` models the backward-pass extension (§V): gradient
contributions scatter-added into remote tables without rounds of
collectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simgpu.cluster import Cluster
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.memory import Buffer
from ..simgpu.units import us

__all__ = ["PGASSpec", "SymmetricHeap", "PGASContext"]


@dataclass(frozen=True)
class PGASSpec:
    """Tunables of the one-sided messaging layer.

    Attributes
    ----------
    message_bytes:
        Payload per one-sided write.  256 B = one 64-float embedding vector,
        matching the paper's communication-counter unit.
    header_bytes:
        Wire framing per message — the "message header takes a good portion
        of bandwidth" inefficiency of §IV-A2d.  32 B/256 B ⇒ 12.5% overhead.
    issue_overhead_ns:
        GPU-side cost of triggering a batch of remote writes from a kernel
        wave ("it is faster to trigger communication on the CPU than on the
        GPU", §III-B2 — nonzero, but tiny and off the critical path).
    quiet_overhead_ns:
        Cost of the memory-fence/quiet operation at kernel end.
    atomic_payload_bytes:
        Payload of one remote atomic (for gradient adds / counters).
    """

    message_bytes: int = 256
    header_bytes: int = 32
    issue_overhead_ns: float = 0.5 * us
    quiet_overhead_ns: float = 2 * us
    atomic_payload_bytes: int = 8

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")
        if self.header_bytes < 0:
            raise ValueError("header_bytes must be non-negative")

    @property
    def wire_efficiency(self) -> float:
        """payload / (payload + header) — fraction of wire carrying data."""
        return self.message_bytes / (self.message_bytes + self.header_bytes)


class SymmetricHeap:
    """Lockstep allocator: one buffer per device at identical offsets.

    NVSHMEM's symmetric heap invariant — every PE holds the allocation at
    the same offset — lets a one-sided write address remote memory with a
    local pointer.  We enforce it by allocating on all devices in the same
    order and asserting the offsets agree.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._allocs: List[List[Buffer]] = []

    def alloc(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.dtype(np.float32),
        *,
        materialize: bool = False,
        label: str = "symmetric",
    ) -> List[Buffer]:
        """Allocate ``shape`` on every device; returns buffers by device id."""
        buffers = [
            dev.memory.alloc(shape, dtype, materialize=materialize, label=label)
            for dev in self.cluster.devices
        ]
        offsets = {b.offset for b in buffers}
        if len(offsets) != 1:
            # Heaps diverged (asymmetric prior allocations): roll back.
            for dev, b in zip(self.cluster.devices, buffers):
                dev.memory.free(b)
            raise RuntimeError(
                "symmetric allocation failed: device heaps have diverged "
                f"(offsets {sorted(offsets)}); allocate symmetric buffers "
                "before any per-device ones"
            )
        self._allocs.append(buffers)
        return buffers

    def free(self, buffers: List[Buffer]) -> None:
        """Free a symmetric allocation on every device."""
        if buffers not in self._allocs:
            raise ValueError("not a live symmetric allocation")
        self._allocs.remove(buffers)
        for dev, b in zip(self.cluster.devices, buffers):
            dev.memory.free(b)


class PGASContext:
    """One-sided communication endpoint set over a cluster."""

    #: profiler counter for one-sided payload bytes (paper's RDMA counter)
    COUNTER = "pgas_bytes"

    def __init__(self, cluster: Cluster, spec: Optional[PGASSpec] = None):
        self.cluster = cluster
        self.spec = spec or PGASSpec()
        self.heap = SymmetricHeap(cluster)
        self._outstanding: Dict[int, List[Event]] = {d.id: [] for d in cluster.devices}
        self.puts_issued = 0
        self.payload_bytes_issued = 0.0

    # -- one-sided ops ---------------------------------------------------------

    def put(self, src: int, dst: int, payload_bytes: float) -> Event:
        """Non-blocking one-sided write of ``payload_bytes`` from src to dst.

        The payload is carried as ``ceil(payload / message_bytes)`` small
        messages injected into the interconnect *now*.  Returns the delivery
        event; :meth:`quiet` waits on all of a PE's outstanding puts.

        Requires peer access (NVLink-mapped memory), as on the testbed.
        """
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if src == dst:
            raise ValueError("put to self: write locally instead (no wire cost)")
        if not self.cluster.device(src).can_access_peer(dst):
            raise PermissionError(f"device {src} has no peer access to device {dst}")
        if payload_bytes == 0:
            ev = self.cluster.engine.event("pgas_put_empty")
            ev.succeed()
            return ev
        ev = self.cluster.interconnect.transfer(
            src,
            dst,
            payload_bytes,
            message_bytes=self.spec.message_bytes,
            header_bytes=self.spec.header_bytes,
            counter=self.COUNTER,
        )
        self._outstanding[src].append(ev)
        self.puts_issued += 1
        self.payload_bytes_issued += payload_bytes
        return ev

    def atomic_add(self, src: int, dst: int, n_elements: int) -> Event:
        """``n_elements`` remote atomic adds (backward-pass gradient scatter)."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        payload = float(n_elements * self.spec.atomic_payload_bytes)
        if payload == 0:
            ev = self.cluster.engine.event("pgas_atomic_empty")
            ev.succeed()
            return ev
        ev = self.cluster.interconnect.transfer(
            src,
            dst,
            payload,
            message_bytes=self.spec.atomic_payload_bytes,
            header_bytes=self.spec.header_bytes,
            counter=self.COUNTER,
        )
        self._outstanding[src].append(ev)
        return ev

    def register_outstanding(self, src: int, ev: Event) -> None:
        """Track an externally-created transfer so :meth:`quiet` drains it.

        Used by the §V aggregator, whose flushes are ordinary transfers but
        must still participate in NVSHMEM completion semantics.
        """
        self._outstanding[src].append(ev)

    def issue_cost(self, n_batches: int = 1) -> float:
        """GPU-side time charged inside the kernel for issuing writes."""
        return self.spec.issue_overhead_ns * n_batches

    # -- completion --------------------------------------------------------------

    def pending_puts(self, device_id: int) -> int:
        """Outstanding (undelivered) puts from one PE."""
        self._gc(device_id)
        return len(self._outstanding[device_id])

    def quiet(self, device_id: int) -> ProcessGenerator:
        """Process generator: drain all outstanding puts from ``device_id``.

        NVSHMEM ``nvshmem_quiet`` semantics: returns when every previously
        issued one-sided op from this PE is complete at its target.
        """
        engine = self.cluster.engine
        self._gc(device_id)
        pending = list(self._outstanding[device_id])
        if pending:
            yield engine.all_of(pending)
            self._gc(device_id)
        yield engine.timeout(self.spec.quiet_overhead_ns)

    def barrier_all(self) -> ProcessGenerator:
        """Process generator: quiet on every PE + device-wide rendezvous."""
        engine = self.cluster.engine
        procs = [
            engine.process(self.quiet(dev.id), name=f"quiet{dev.id}")
            for dev in self.cluster.devices
        ]
        yield engine.all_of(procs)

    def _gc(self, device_id: int) -> None:
        """Drop delivered events from the outstanding list."""
        self._outstanding[device_id] = [
            ev for ev in self._outstanding[device_id] if not ev.triggered
        ]
