"""Topology-aware hierarchical communication: two-level routing over nodes.

The §V multi-node setting is bounded by the inter-node NIC, whose
:class:`~repro.simgpu.interconnect.LinkSpec` charges a per-message
descriptor cost — yet flat routing moves every device→device payload
point-to-point, so ``N`` nodes × ``P`` GPUs pay ``(N·P)²`` NIC message
streams where ``N²`` coalesced ones would do.  This module implements the
standard remedy (NVSHMEM-style hierarchies, fused forwarding along the
fast fabric): stage intra-node over NVLink, cross nodes once per ordered
node pair.

* :class:`HierSpec` — the routing policy: node geometry
  (``devices_per_node``, ``leader_rank``), staging flush thresholds, and
  the coalesced NIC framing.  ``devices_per_node == 1`` (or a single
  node) disables routing entirely: the flat path is recovered exactly,
  event for event.
* :class:`TwoLevelAllToAll` — the baseline's collective, hierarchically:
  intra-node gather of per-destination-node payloads to a node leader
  (plain chunked peer copies over NVLink — no collective-algorithm
  derate, staging bypasses NCCL), one coalesced NIC transfer per ordered
  node pair, then an intra-node scatter on the far side.  Same
  :class:`~repro.comm.collective.WorkHandle` contract as the flat
  collective, so :class:`~repro.core.baseline.BaselineRetrieval` swaps it
  in without touching phase accounting.
* :class:`NodeStagingRouter` — hierarchical PGAS: remote writes destined
  off-node land in a per-(source-node, destination-node) staging buffer
  (the :class:`~repro.core.aggregator.AsyncAggregator` flush policy —
  size trigger or max-wait timer), forwarding non-leader payloads to the
  node leader over NVLink first; each flush crosses the NIC as one
  aggregated leader→leader message stream and scatters to the final
  destinations on arrival.  Every put registers a completion-chain event
  with the PGAS outstanding set, so ``quiet`` retains its NVSHMEM
  drain-everything semantics through the staging hops.

Routing changes *timing only*: payload bytes, destinations, and the
functional outputs are untouched, which is what the ``tests/hier``
bit-identity suite pins.

Counters (``hier.fwd_bytes`` / ``hier.nic_bytes`` / ``hier.scatter_bytes``
/ ``hier.stores`` / ``hier.flushes`` / ``hier.nic_transfers``) and the
``"hier"``-category leader/staging spans feed the
:class:`~repro.telemetry.RunReport` ``hier`` section (schema v6) and
Chrome traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simgpu.cluster import Cluster
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.interconnect import Interconnect
from ..simgpu.units import KiB, us
from .collective import CollectiveSpec, WorkHandle
from .pgas import PGASContext

__all__ = [
    "FWD_COUNTER",
    "HierSpec",
    "NIC_COUNTER",
    "NodeStagingRouter",
    "SCATTER_COUNTER",
    "TwoLevelAllToAll",
    "inter_node_message_count",
    "inter_node_wire_bytes",
]

#: payload bytes forwarded intra-node to the source-side leader
FWD_COUNTER = "hier.fwd_bytes"
#: payload bytes crossing the NIC as coalesced leader→leader transfers
NIC_COUNTER = "hier.nic_bytes"
#: payload bytes scattered intra-node from the destination-side leader
SCATTER_COUNTER = "hier.scatter_bytes"


@dataclass(frozen=True)
class HierSpec:
    """Routing policy of the hierarchical communication layer.

    Attributes
    ----------
    devices_per_node:
        Node geometry: devices ``[k*P, (k+1)*P)`` form node ``k``.  Must
        divide the device count.  ``1`` means every device is its own
        node — hierarchical routing is a no-op and the flat path runs
        unchanged (the degenerate-identity invariant).
    leader_rank:
        Intra-node rank of the node leader that owns the NIC stream
        (``leader = node * devices_per_node + leader_rank``).
    stage_flush_bytes:
        PGAS staging size trigger: a (source-node, destination-node)
        buffer flushes once it holds this much payload.
    stage_max_wait_ns:
        PGAS staging time trigger: a buffer holding data flushes at most
        this long after its oldest pending byte arrived.
    nic_message_bytes:
        Wire framing of the coalesced inter-node transfer.  ``0`` (the
        default) carries each leader→leader transfer as a *single*
        message — the maximal coalescing that pins the message-count
        invariant.
    nic_header_bytes:
        Framing bytes per coalesced NIC message.
    """

    devices_per_node: int = 4
    leader_rank: int = 0
    stage_flush_bytes: int = 64 * KiB
    stage_max_wait_ns: float = 50 * us
    nic_message_bytes: int = 0
    nic_header_bytes: int = 64

    def __post_init__(self) -> None:
        if self.devices_per_node <= 0:
            raise ValueError(
                f"devices_per_node must be positive, got {self.devices_per_node}"
            )
        if not (0 <= self.leader_rank < self.devices_per_node):
            raise ValueError(
                f"leader_rank {self.leader_rank} outside node of "
                f"{self.devices_per_node} devices"
            )
        if self.stage_flush_bytes <= 0:
            raise ValueError("stage_flush_bytes must be positive")
        if self.stage_max_wait_ns <= 0:
            raise ValueError("stage_max_wait_ns must be positive")
        if self.nic_message_bytes < 0 or self.nic_header_bytes < 0:
            raise ValueError("NIC framing must be non-negative")

    # -- node geometry --------------------------------------------------------

    def node_of(self, device_id: int) -> int:
        """The node a device belongs to."""
        return device_id // self.devices_per_node

    def leader_of(self, node: int) -> int:
        """The device id of a node's leader."""
        return node * self.devices_per_node + self.leader_rank

    def same_node(self, a: int, b: int) -> bool:
        """True when both devices share a node (fast-fabric reachable)."""
        return self.node_of(a) == self.node_of(b)

    def n_nodes(self, n_devices: int) -> int:
        """Node count for a device count (validate first)."""
        return n_devices // self.devices_per_node

    def validate_for(self, n_devices: int) -> None:
        """Raise unless the node geometry tiles ``n_devices`` exactly."""
        if n_devices % self.devices_per_node != 0:
            raise ValueError(
                f"devices_per_node={self.devices_per_node} does not divide "
                f"n_devices={n_devices}"
            )

    def active(self, n_devices: int) -> bool:
        """Whether hierarchical routing changes anything for this size.

        False for ``devices_per_node == 1`` (all-singleton nodes) and for
        a single node (no inter-node traffic exists) — the callers bypass
        the hierarchy entirely then, keeping the flat path event-identical.
        """
        return 1 < self.devices_per_node < n_devices


# -- fabric accounting -------------------------------------------------------


def inter_node_message_count(interconnect: Interconnect, devices_per_node: int) -> int:
    """Messages carried so far on links that cross a node boundary."""
    if devices_per_node <= 0:
        raise ValueError("devices_per_node must be positive")
    return sum(
        lk.messages_sent
        for lk in interconnect.links()
        if lk.src // devices_per_node != lk.dst // devices_per_node
    )


def inter_node_wire_bytes(interconnect: Interconnect, devices_per_node: int) -> float:
    """Wire bytes (incl. headers) carried so far on inter-node links."""
    if devices_per_node <= 0:
        raise ValueError("devices_per_node must be positive")
    return sum(
        lk.bytes_carried
        for lk in interconnect.links()
        if lk.src // devices_per_node != lk.dst // devices_per_node
    )


# -- baseline: two-level all-to-all ------------------------------------------


class TwoLevelAllToAll:
    """Hierarchical ``all_to_all_single`` for the collective baseline.

    Same-node pairs transfer exactly as the flat collective does (chunked,
    with the NCCL algorithm derate).  For each ordered node pair the
    cross-node traffic runs a three-hop chain: gather the senders'
    per-destination-node payloads to the source leader over NVLink, cross
    the NIC once as a coalesced transfer, scatter from the destination
    leader.  The staging hops are plain chunked peer copies at full fabric
    rate — they bypass the collective algorithm, like the PGAS path.
    """

    def __init__(
        self,
        cluster: Cluster,
        spec: Optional[CollectiveSpec] = None,
        hier: Optional[HierSpec] = None,
    ):
        self.cluster = cluster
        self.spec = spec or CollectiveSpec()
        self.hier = hier or HierSpec()
        self.hier.validate_for(cluster.n_devices)

    # -- internals ------------------------------------------------------------

    def _chunked(
        self, src: int, dst: int, nbytes: float, *, derate: bool, counter: Optional[str]
    ) -> List[Event]:
        """Chunked src→dst transfer; flat-collective math when ``derate``."""
        if nbytes <= 0:
            return []
        spec = self.spec
        n_chunks = math.ceil(nbytes / spec.chunk_bytes)
        events = []
        remaining = nbytes
        for _ in range(n_chunks):
            size = min(spec.chunk_bytes, remaining)
            remaining -= size
            header = spec.per_chunk_header_bytes
            if derate:
                # The flat path's algorithm-efficiency derate, charged as
                # extra wire bytes per chunk (see CollectiveContext).
                header += int(size * (1.0 / spec.bandwidth_efficiency - 1.0))
            events.append(
                self.cluster.interconnect.transfer(
                    src, dst, size,
                    message_bytes=0, header_bytes=header, counter=counter,
                )
            )
        return events

    def _node_pair_chain(
        self, src_node: int, dst_node: int, split: np.ndarray
    ) -> ProcessGenerator:
        """Gather → coalesced NIC hop → scatter for one ordered node pair."""
        hier = self.hier
        P = hier.devices_per_node
        engine = self.cluster.engine
        prof = self.cluster.profiler
        s_lo, d_lo = src_node * P, dst_node * P
        s_leader, d_leader = hier.leader_of(src_node), hier.leader_of(dst_node)
        t0 = engine.now

        gather = []
        for s in range(s_lo, s_lo + P):
            if s == s_leader:
                continue
            contrib = float(split[s, d_lo:d_lo + P].sum())
            gather.extend(
                self._chunked(s, s_leader, contrib, derate=False, counter=FWD_COUNTER)
            )
        if gather:
            yield engine.all_of(gather)

        total = float(split[s_lo:s_lo + P, d_lo:d_lo + P].sum())
        nic = self.cluster.interconnect.transfer(
            s_leader, d_leader, total,
            message_bytes=hier.nic_message_bytes,
            header_bytes=hier.nic_header_bytes,
            counter=NIC_COUNTER,
        )
        prof.add_count("hier.nic_transfers", engine.now, 1.0)
        yield nic

        scatter = []
        for d in range(d_lo, d_lo + P):
            if d == d_leader:
                continue
            recv = float(split[s_lo:s_lo + P, d].sum())
            scatter.extend(
                self._chunked(d_leader, d, recv, derate=False, counter=SCATTER_COUNTER)
            )
        if scatter:
            yield engine.all_of(scatter)
        prof.record_span(
            f"hier.pair.n{src_node}->n{dst_node}", "hier", s_leader, t0, engine.now
        )

    # -- the collective --------------------------------------------------------

    def all_to_all_single(self, split_bytes: np.ndarray) -> WorkHandle:
        """Two-level all-to-all with byte matrix ``split_bytes[src, dst]``.

        Control path (launch overhead, ``wait()`` sync) is charged exactly
        as the flat collective charges it, so phase accounting in
        :class:`~repro.core.baseline.BaselineRetrieval` is unchanged.
        """
        split = np.asarray(split_bytes, dtype=np.float64)
        G = self.cluster.n_devices
        if split.shape != (G, G):
            raise ValueError(f"split_bytes must be ({G}, {G}), got {split.shape}")
        if np.any(split < 0):
            raise ValueError("split_bytes must be non-negative")
        hier = self.hier
        engine = self.cluster.engine
        done = engine.event("two_level_all_to_all")

        def control() -> None:
            waitables: List[object] = []
            # Same-node pairs: flat chunked transfers, unchanged math.
            for src in range(G):
                for dst in range(G):
                    if src != dst and hier.same_node(src, dst):
                        waitables.extend(
                            self._chunked(
                                src, dst, float(split[src, dst]),
                                derate=True, counter=None,
                            )
                        )
            # Cross-node traffic: one gather/NIC/scatter chain per ordered
            # node pair with any payload.
            N = hier.n_nodes(G)
            P = hier.devices_per_node
            for sn in range(N):
                for dn in range(N):
                    if sn == dn:
                        continue
                    block = split[sn * P:(sn + 1) * P, dn * P:(dn + 1) * P]
                    if not block.any():
                        continue
                    waitables.append(
                        engine.process(
                            self._node_pair_chain(sn, dn, split),
                            name=f"hier_pair_n{sn}->n{dn}",
                        )
                    )
            if waitables:
                engine.all_of(waitables).add_callback(
                    lambda ev: done.succeed() if ev.ok else done.fail(ev.value)
                )
            else:
                done.succeed()

        engine.call_in(self.spec.launch_overhead_ns, control)
        return WorkHandle(self.cluster, done, self.spec, "two_level_all_to_all")


# -- PGAS: node-leader staging ------------------------------------------------


@dataclass
class _StageBuffer:
    """One (source-node, destination-node) staging buffer's pending state."""

    first_at: float
    payload: float = 0.0
    by_dst: Dict[int, float] = field(default_factory=dict)
    hop1: List[Event] = field(default_factory=list)
    chains: List[Event] = field(default_factory=list)


class NodeStagingRouter:
    """Per-node staging for off-node one-sided writes.

    The hierarchical PGAS variant: ``put`` forwards a non-leader source's
    payload to its node leader over the fast fabric and accumulates it in
    the (source-node, destination-node) staging buffer; the buffer flushes
    (size threshold or max-wait timer, the
    :class:`~repro.core.aggregator.AsyncAggregator` policy) as **one**
    coalesced leader→leader NIC transfer followed by an intra-node scatter
    to the final destinations.  Each put's completion-chain event is
    registered with the PGAS outstanding set at issue time, so ``quiet``
    drains the full forward → NIC → scatter chain.
    """

    def __init__(self, pgas: PGASContext, spec: Optional[HierSpec] = None):
        self.pgas = pgas
        self.hier = spec or HierSpec()
        self.cluster = pgas.cluster
        self.hier.validate_for(self.cluster.n_devices)
        self._pending: Dict[Tuple[int, int], _StageBuffer] = {}
        self._timers: Dict[Tuple[int, int], object] = {}
        self.stores = 0
        self.flushes = 0

    # -- the Listing-2 replacement call ---------------------------------------

    def put(self, src: int, dst: int, payload_bytes: float) -> None:
        """Stage an off-node one-sided write (same-node writes stay direct)."""
        hier = self.hier
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if hier.same_node(src, dst):
            raise ValueError(
                f"devices {src} and {dst} share a node; use a direct put"
            )
        if payload_bytes == 0:
            return
        engine = self.cluster.engine
        prof = self.cluster.profiler
        key = (hier.node_of(src), hier.node_of(dst))
        leader = hier.leader_of(key[0])
        # The chain event completes when this payload has fully landed at
        # its final destination (after the scatter hop); registering it per
        # put preserves NVSHMEM quiet semantics across the staging hops.
        chain = engine.event(f"hier_put{src}->n{key[1]}")
        self.pgas.register_outstanding(src, chain)
        hop1 = None
        if src != leader:
            hop1 = self.cluster.interconnect.transfer(
                src, leader, payload_bytes,
                message_bytes=self.pgas.spec.message_bytes,
                header_bytes=self.pgas.spec.header_bytes,
                counter=FWD_COUNTER,
            )
        buf = self._pending.get(key)
        if buf is None:
            buf = _StageBuffer(first_at=engine.now)
            self._pending[key] = buf
            self._arm_timer(key)
        buf.payload += payload_bytes
        buf.by_dst[dst] = buf.by_dst.get(dst, 0.0) + payload_bytes
        if hop1 is not None:
            buf.hop1.append(hop1)
        buf.chains.append(chain)
        self.stores += 1
        prof.add_count("hier.stores", engine.now, 1.0)
        if buf.payload >= hier.stage_flush_bytes:
            self.flush(key)

    # -- flushing --------------------------------------------------------------

    def flush(self, key: Tuple[int, int]):
        """Start the gather-wait → NIC → scatter chain for one buffer now."""
        buf = self._pending.pop(key, None)
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancelled = True  # type: ignore[attr-defined]
        if buf is None or buf.payload <= 0:
            return None
        self.flushes += 1
        return self.cluster.engine.process(
            self._flush_chain(key, buf), name=f"hier_flush_n{key[0]}->n{key[1]}"
        )

    def flush_all(self) -> List[object]:
        """Flush every staging buffer (kernel-end residue push)."""
        procs = []
        for key in list(self._pending):
            proc = self.flush(key)
            if proc is not None:
                procs.append(proc)
        return procs

    def pending_bytes(self, src_node: int, dst_node: int) -> float:
        """Currently staged payload for a node pair."""
        buf = self._pending.get((src_node, dst_node))
        return buf.payload if buf is not None else 0.0

    # -- internals --------------------------------------------------------------

    def _flush_chain(self, key: Tuple[int, int], buf: _StageBuffer) -> ProcessGenerator:
        hier = self.hier
        src_node, dst_node = key
        s_leader, d_leader = hier.leader_of(src_node), hier.leader_of(dst_node)
        engine = self.cluster.engine
        prof = self.cluster.profiler
        t0 = engine.now
        if buf.hop1:
            yield engine.all_of(buf.hop1)
        nic = self.cluster.interconnect.transfer(
            s_leader, d_leader, buf.payload,
            message_bytes=hier.nic_message_bytes,
            header_bytes=hier.nic_header_bytes,
            counter=NIC_COUNTER,
        )
        prof.add_count("hier.flushes", engine.now, 1.0)
        prof.add_count("hier.nic_transfers", engine.now, 1.0)
        yield nic
        scatter = []
        for dst, nbytes in buf.by_dst.items():
            if dst == d_leader:
                continue
            scatter.append(
                self.cluster.interconnect.transfer(
                    d_leader, dst, nbytes,
                    message_bytes=self.pgas.spec.message_bytes,
                    header_bytes=self.pgas.spec.header_bytes,
                    counter=SCATTER_COUNTER,
                )
            )
        if scatter:
            yield engine.all_of(scatter)
        prof.record_span(
            f"hier.stage.n{src_node}->n{dst_node}", "hier", s_leader, t0, engine.now
        )
        now = engine.now
        for chain in buf.chains:
            chain.succeed(now)

    def _arm_timer(self, key: Tuple[int, int]) -> None:
        """Schedule the max-wait flush for a freshly non-empty buffer."""
        engine = self.cluster.engine

        def on_timer(k: Tuple[int, int] = key) -> None:
            if k in self._pending:
                self.flush(k)

        self._timers[key] = engine.call_in(self.hier.stage_max_wait_ns, on_timer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<NodeStagingRouter pending_pairs={len(self._pending)} "
            f"stores={self.stores} flushes={self.flushes}>"
        )
