"""``repro.comm`` — communication substrates.

:mod:`repro.comm.collective` is the NCCL-like bulk-synchronous layer the
baseline uses; :mod:`repro.comm.pgas` is the NVSHMEM-like one-sided layer
the paper's fused retrieval uses; :mod:`repro.comm.hier` is the
topology-aware two-level routing layer the ``"+hier"`` backends lay over
either of them.
"""

from .collective import CollectiveContext, CollectiveSpec, WorkHandle
from .hier import (
    HierSpec,
    NodeStagingRouter,
    TwoLevelAllToAll,
    inter_node_message_count,
    inter_node_wire_bytes,
)
from .pgas import PGASContext, PGASSpec, SymmetricHeap

__all__ = [
    "CollectiveContext",
    "CollectiveSpec",
    "HierSpec",
    "NodeStagingRouter",
    "PGASContext",
    "PGASSpec",
    "SymmetricHeap",
    "TwoLevelAllToAll",
    "WorkHandle",
    "inter_node_message_count",
    "inter_node_wire_bytes",
]
