"""``repro.comm`` — communication substrates.

:mod:`repro.comm.collective` is the NCCL-like bulk-synchronous layer the
baseline uses; :mod:`repro.comm.pgas` is the NVSHMEM-like one-sided layer
the paper's fused retrieval uses.
"""

from .collective import CollectiveContext, CollectiveSpec, WorkHandle
from .pgas import PGASContext, PGASSpec, SymmetricHeap

__all__ = [
    "CollectiveContext",
    "CollectiveSpec",
    "PGASContext",
    "PGASSpec",
    "SymmetricHeap",
    "WorkHandle",
]
