"""NCCL-style collective communication (the paper's baseline scheme).

Bulk-synchronous semantics, faithfully reproduced:

* the caller launches a collective *after* its compute kernel has finished
  (separate compute / communicate phases);
* the call itself costs a control-path overhead — NCCL enqueue, CUDA kernel
  synchronisation, rendezvous — before any byte moves (paper §III-A's
  "false dependencies" and "communication control path" costs);
* payloads move in large chunks that use bandwidth efficiently (per-chunk
  protocol overhead is small relative to chunk size);
* completion is observed via a :class:`WorkHandle` — the analogue of the
  request object returned by ``all_to_all_single(..., async_op=True)``,
  whose ``wait()`` the baseline calls to synchronise all GPUs.

Chunking matters for the figures: because each (src, dst) payload is cut
into ``chunk_bytes`` pieces that complete one by one, the comm-volume
counter ramps smoothly *within* the communication phase — but only starts
after compute ends, which is exactly the flat-then-steep baseline curve of
Figs. 7 and 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..simgpu.cluster import Cluster
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.units import MiB, us

__all__ = ["CollectiveSpec", "WorkHandle", "CollectiveContext"]


@dataclass(frozen=True)
class CollectiveSpec:
    """Tunables of the collective layer.

    Defaults model NCCL 2.x on an NVLink node.

    Attributes
    ----------
    chunk_bytes:
        Pipelining granularity of each pairwise transfer.
    launch_overhead_ns:
        Host-side control path per collective call: enqueue + kernel launch
        + rendezvous across ranks.
    per_chunk_header_bytes:
        Protocol framing per chunk (negligible for MiB chunks — that is the
        point of collectives).
    wait_overhead_ns:
        Cost of the ``wait()`` observed by the host (CUDA event sync).
    bandwidth_efficiency:
        Fraction of the raw link bandwidth the collective *algorithm*
        achieves end-to-end.  Calibrated from the paper's baseline runtime
        breakdown (Figs. 6/9): PyTorch ``all_to_all_single`` over NCCL on
        the DGX-1 moves ~134 MB per GPU in a time comparable to the 30 ms
        EMB kernel, i.e. an effective ~9 GB/s of the 48 GB/s pair links
        (protocol handshakes, stream serialisation, and p2p chunk
        scheduling).  The PGAS layer does not pay this — bypassing it is
        the point of one-sided writes.
    """

    chunk_bytes: int = 4 * MiB
    launch_overhead_ns: float = 30 * us
    per_chunk_header_bytes: int = 512
    wait_overhead_ns: float = 8 * us
    bandwidth_efficiency: float = 0.1875
    #: all-to-all schedule: "direct" fires every pairwise transfer at once
    #: (NCCL's p2p schedule on NVLink); "pairwise" runs G-1 synchronised
    #: exchange rounds (partner = (rank ± r) mod G), the classic
    #: torus-friendly schedule — cheaper on contended fabrics, slower here
    #: because every round ends with a barrier.
    alltoall_algorithm: str = "direct"

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if min(self.launch_overhead_ns, self.per_chunk_header_bytes, self.wait_overhead_ns) < 0:
            raise ValueError("overheads must be non-negative")
        if not (0.0 < self.bandwidth_efficiency <= 1.0):
            raise ValueError(
                f"bandwidth_efficiency must be in (0, 1], got {self.bandwidth_efficiency}"
            )
        if self.alltoall_algorithm not in ("direct", "pairwise"):
            raise ValueError(
                f"unknown alltoall_algorithm {self.alltoall_algorithm!r}"
            )


class WorkHandle:
    """Async handle for an in-flight collective (``async_op=True`` analogue)."""

    def __init__(self, cluster: Cluster, done: Event, spec: CollectiveSpec, name: str):
        self._cluster = cluster
        self._done = done
        self._spec = spec
        self.name = name
        self.issued_at = cluster.engine.now
        self.completed_at: Optional[float] = None
        done.add_callback(self._on_done)

    def _on_done(self, ev: Event) -> None:
        self.completed_at = self._cluster.engine.now

    @property
    def is_completed(self) -> bool:
        """True once every constituent transfer has been delivered."""
        return self._done.triggered

    def wait(self) -> ProcessGenerator:
        """Process generator: block until completion + host sync overhead."""
        engine = self._cluster.engine
        if not self._done.triggered:
            yield self._done
        yield engine.timeout(self._spec.wait_overhead_ns)


class CollectiveContext:
    """Issues NCCL-like collectives on a cluster."""

    def __init__(self, cluster: Cluster, spec: Optional[CollectiveSpec] = None):
        self.cluster = cluster
        self.spec = spec or CollectiveSpec()

    # -- internals -------------------------------------------------------------

    def _pairwise_transfer(self, src: int, dst: int, nbytes: float) -> List[Event]:
        """Chunked transfer src→dst; returns per-chunk completion events.

        Zero-byte pairs complete immediately (no zero-length chunk is
        scheduled); negative byte counts are a caller bug and raise.
        """
        if nbytes < 0:
            raise ValueError(f"transfer bytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return []
        spec = self.spec
        n_chunks = math.ceil(nbytes / spec.chunk_bytes)
        events = []
        remaining = nbytes
        for _ in range(n_chunks):
            size = min(spec.chunk_bytes, remaining)
            remaining -= size
            # The algorithm-efficiency derate is charged as extra wire bytes
            # per chunk, so it also stretches the link's busy window (which
            # the comm-volume figures observe).
            inefficiency = int(size * (1.0 / spec.bandwidth_efficiency - 1.0))
            events.append(
                self.cluster.interconnect.transfer(
                    src,
                    dst,
                    size,
                    message_bytes=0,
                    header_bytes=spec.per_chunk_header_bytes + inefficiency,
                )
            )
        return events

    def _start(self, name: str, transfers_fn) -> WorkHandle:
        """Common control path: overhead, then fire all pairwise transfers."""
        engine = self.cluster.engine
        done = engine.event(name)

        def control() -> None:
            events: List[Event] = transfers_fn()
            if events:
                engine.all_of(events).add_callback(
                    lambda ev: done.succeed() if ev.ok else done.fail(ev.value)
                )
            else:
                done.succeed()

        engine.call_in(self.spec.launch_overhead_ns, control)
        return WorkHandle(self.cluster, done, self.spec, name)

    # -- collectives -------------------------------------------------------------

    def all_to_all_single(self, split_bytes: np.ndarray) -> WorkHandle:
        """All-to-all with per-pair byte matrix ``split_bytes[src, dst]``.

        Diagonal entries (local copies) are free — they stay in HBM, and
        the baseline's *unpack* step (modelled by the caller) is what
        touches them.  The schedule follows
        :attr:`CollectiveSpec.alltoall_algorithm`.
        """
        split = np.asarray(split_bytes, dtype=np.float64)
        G = self.cluster.n_devices
        if split.shape != (G, G):
            raise ValueError(f"split_bytes must be ({G}, {G}), got {split.shape}")
        if np.any(split < 0):
            raise ValueError("split_bytes must be non-negative")
        if not split.any():
            # Degenerate all-zero split: complete after the control path
            # alone (launch + wait are still charged — the call happened);
            # no zero-length transfers or exchange rounds are scheduled.
            return self._start("all_to_all_single", lambda: [])

        if self.spec.alltoall_algorithm == "pairwise":
            return self._pairwise_rounds_alltoall(split)

        def transfers() -> List[Event]:
            events: List[Event] = []
            for src in range(G):
                for dst in range(G):
                    if src != dst:
                        events.extend(self._pairwise_transfer(src, dst, float(split[src, dst])))
            return events

        return self._start("all_to_all_single", transfers)

    def _pairwise_rounds_alltoall(self, split: np.ndarray) -> WorkHandle:
        """G-1 synchronised exchange rounds (round r: dst = (src + r) mod G)."""
        engine = self.cluster.engine
        G = self.cluster.n_devices
        done = engine.event("all_to_all_single[pairwise]")

        def rounds() -> "ProcessGenerator":
            yield engine.timeout(self.spec.launch_overhead_ns)
            for r in range(1, G):
                events: List[Event] = []
                for src in range(G):
                    dst = (src + r) % G
                    events.extend(
                        self._pairwise_transfer(src, dst, float(split[src, dst]))
                    )
                if events:
                    # Round barrier: nobody starts round r+1 early.
                    yield engine.all_of(events)
            done.succeed()

        engine.process(rounds(), name="alltoall_pairwise")
        return WorkHandle(self.cluster, done, self.spec, "all_to_all_single[pairwise]")

    def all_gather(self, bytes_per_rank: Sequence[float]) -> WorkHandle:
        """Each rank broadcasts its contribution to every other rank."""
        G = self.cluster.n_devices
        contrib = [float(b) for b in bytes_per_rank]
        if len(contrib) != G:
            raise ValueError(f"need {G} contributions, got {len(contrib)}")
        if any(b < 0 for b in contrib):
            raise ValueError("bytes_per_rank must be non-negative")

        def transfers() -> List[Event]:
            events: List[Event] = []
            for src in range(G):
                for dst in range(G):
                    if src != dst:
                        events.extend(self._pairwise_transfer(src, dst, contrib[src]))
            return events

        return self._start("all_gather", transfers)

    def reduce_scatter(self, total_bytes: float) -> WorkHandle:
        """Ring reduce-scatter of a ``total_bytes`` tensor (per-rank equal share).

        Ring volume: each rank sends ``(G-1)/G * total`` in G-1 steps to its
        neighbour.
        """
        G = self.cluster.n_devices
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        share = total_bytes / G if G else 0.0

        def transfers() -> List[Event]:
            events: List[Event] = []
            for step in range(G - 1):
                for src in range(G):
                    events.extend(self._pairwise_transfer(src, (src + 1) % G, share))
            return events

        return self._start("reduce_scatter", transfers)

    def all_reduce(self, total_bytes: float) -> WorkHandle:
        """Ring all-reduce: reduce-scatter + all-gather volume (2(G-1)/G)."""
        G = self.cluster.n_devices
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        share = total_bytes / G if G else 0.0

        def transfers() -> List[Event]:
            events: List[Event] = []
            for _phase in range(2):  # reduce-scatter then all-gather
                for _step in range(G - 1):
                    for src in range(G):
                        events.extend(self._pairwise_transfer(src, (src + 1) % G, share))
            return events

        return self._start("all_reduce", transfers)

    def barrier(self) -> WorkHandle:
        """A tiny all-to-all: pure control-path latency."""

        def transfers() -> List[Event]:
            events: List[Event] = []
            G = self.cluster.n_devices
            for src in range(G):
                for dst in range(G):
                    if src != dst:
                        events.extend(self._pairwise_transfer(src, dst, 8.0))
            return events

        return self._start("barrier", transfers)
