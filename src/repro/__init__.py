"""repro — PGAS-style multi-GPU embedding retrieval for DLRM.

Reproduction of Chen, Buluç, Yelick & Owens, *Accelerating Multi-GPU
Embedding Retrieval with PGAS-Style Communication for Deep Learning
Recommendation Systems* (SC 2024), as a pure-Python library over a
discrete-event multi-GPU simulator.

Packages
--------
:mod:`repro.core`
    The paper's contribution: distributed EMB retrieval with baseline
    (NCCL-style collective) and PGAS fused (one-sided) backends.
:mod:`repro.simgpu`
    The substrate: devices, streams, kernel cost model, NVLink fabric,
    profiler.
:mod:`repro.comm`
    Collective and PGAS communication layers.
:mod:`repro.compress`
    Wire codecs (fp32/fp16/int8/int4) and the ``"+compress"`` backends.
:mod:`repro.replication`
    Shard replication, failover routing, online recovery — the
    ``"+replicated"`` backends.
:mod:`repro.reshard`
    Skew-aware online resharding: traffic tracking, migration planning,
    paced shard streaming — the ``"+reshard"`` backends.
:mod:`repro.hier`
    Topology-aware hierarchical communication: two-level all-to-all and
    node-leader PGAS staging — the ``"+hier"`` backends.
:mod:`repro.dlrm`
    Numpy DLRM: embedding tables, jagged batches, MLPs, interaction,
    synthetic data.
:mod:`repro.bench`
    Experiment harness regenerating every table and figure of §IV.
:mod:`repro.telemetry`
    Derived gauges, paper-facing metrics (overlap, burstiness), and the
    versioned :class:`~repro.telemetry.RunReport` JSON artifact.
:mod:`repro.obs`
    Request-level tracing (trace contexts, Perfetto flows),
    critical-path analysis, and the perf regression gate.

Quickstart
----------
>>> import repro
>>> cfg = repro.WorkloadConfig(num_tables=8, rows_per_table=1000, dim=16,
...                            batch_size=64, max_pooling=8)
>>> emb = repro.DistributedEmbedding(cfg, n_devices=2, backend="pgas",
...                                  materialize=True)
>>> batch = repro.SyntheticDataGenerator(cfg).sparse_batch()
>>> result = emb.forward(batch)
"""

from . import comm, core, dlrm, simgpu, telemetry
from .core import (
    BackendInfo,
    BackendName,
    BaselineRetrieval,
    DLRMInferencePipeline,
    DistributedEmbedding,
    FeatureSpec,
    ForwardResult,
    InferenceServer,
    PGASFusedRetrieval,
    PhaseTiming,
    RowWiseSharding,
    RunSpec,
    SchedulerSpec,
    ServingSpec,
    ShardedEmbeddingTables,
    TableWiseSharding,
    available_backends,
    build_backend,
    preset_runspec,
)

# Importing repro.cache registers the "+cache" backends; keep it after core.
from . import cache
from .cache import CacheConfig, CachedRetrieval

# Importing repro.faults registers the "+resilient" backends; keep it after
# core and cache (the fallback path reuses the hot-row cache).
from . import faults
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ResilienceSpec,
    ResilientRetrieval,
)

# Importing repro.compress registers the "+compress" backends; keep it after core.
from . import compress
from .compress import CompressedRetrieval, CompressionSpec

# Importing repro.replication registers the "+replicated" backends; keep it
# after core and faults (failover keys off the device_down fault kind).
from . import replication
from .replication import ReplicatedRetrieval, ReplicationSpec

# Importing repro.reshard registers the "+reshard" backends; keep it after
# core and replication (migration streaming reuses the paced-transfer idiom).
from . import reshard
from .reshard import ReshardRetrieval, ReshardSpec

# Importing repro.hier registers the "+hier" backends; keep it after core.
from . import hier
from .hier import HierRetrieval, HierSpec
from .dlrm import (
    DLRM,
    DLRMConfig,
    EmbeddingBagCollection,
    EmbeddingTable,
    EmbeddingTableConfig,
    JaggedField,
    SparseBatch,
    SyntheticDataGenerator,
    WorkloadConfig,
)
from . import obs
from .obs import TraceSpec
from .simgpu import Cluster, DeviceSpec, dgx_v100
from .telemetry import MetricsRegistry, RunReport, collect_run_report

__version__ = "0.1.0"

__all__ = [
    "BackendInfo",
    "BackendName",
    "BaselineRetrieval",
    "CacheConfig",
    "CachedRetrieval",
    "Cluster",
    "CompressedRetrieval",
    "CompressionSpec",
    "DLRM",
    "DLRMConfig",
    "DLRMInferencePipeline",
    "DeviceSpec",
    "DistributedEmbedding",
    "InferenceServer",
    "EmbeddingBagCollection",
    "EmbeddingTable",
    "EmbeddingTableConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FeatureSpec",
    "ForwardResult",
    "HierRetrieval",
    "HierSpec",
    "JaggedField",
    "MetricsRegistry",
    "PGASFusedRetrieval",
    "PhaseTiming",
    "RunReport",
    "ReplicatedRetrieval",
    "ReplicationSpec",
    "ResilienceSpec",
    "ResilientRetrieval",
    "ReshardRetrieval",
    "ReshardSpec",
    "RowWiseSharding",
    "RunSpec",
    "SchedulerSpec",
    "ServingSpec",
    "ShardedEmbeddingTables",
    "SparseBatch",
    "SyntheticDataGenerator",
    "TableWiseSharding",
    "TraceSpec",
    "WorkloadConfig",
    "__version__",
    "available_backends",
    "build_backend",
    "preset_runspec",
    "cache",
    "collect_run_report",
    "comm",
    "compress",
    "core",
    "dgx_v100",
    "dlrm",
    "faults",
    "hier",
    "obs",
    "replication",
    "reshard",
    "simgpu",
    "telemetry",
]
