"""``repro.core`` — the paper's contribution.

Distributed EMB retrieval with two interchangeable communication backends
(NCCL-style collective baseline, PGAS fused one-sided), the sharding plans
beneath them, derived simulator workloads, and the §V extensions (backward
pass, message aggregator).
"""

from .aggregator import AggregatorSpec, AsyncAggregator
from .backward import (
    BaselineBackward,
    PGASFusedBackward,
    baseline_functional_backward,
    pgas_functional_backward,
    reference_backward,
    table_row_gradients,
)
from .baseline import BaselineRetrieval, PhaseTiming
from .calibration import (
    EMB_MIN_WAVES_FOR_PEAK,
    EMB_SAMPLES_PER_BLOCK,
    NCCL_ALLTOALL_EFFICIENCY,
    REMOTE_WRITE_KERNEL_DRAG,
    UNPACK_BANDWIDTH,
)
from .factory import (
    CANONICAL_FEATURE_ORDER,
    FeatureSpec,
    build_adapter,
    build_backend,
    parse_backend_name,
)
from .functional import (
    SendBlock,
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
    reference_forward,
)
from .pgas_retrieval import PGASFusedRetrieval
from .pipeline import DLRMInferencePipeline, PipelineConfig, PipelineTiming
from .planner import PlacementError, PlacementReport, min_devices_required, plan_table_wise
from .retrieval import (
    BackendInfo,
    BackendName,
    BackendSpec,
    DistributedEmbedding,
    ForwardResult,
    RetrievalBackend,
    available_backends,
    backend_spec,
    register_backend,
)
from .runspec import PRESETS, RunSpec, preset_runspec
from .serving import InferenceServer, SchedulerSpec, ServingResult, ServingSpec
from .sharding import (
    RowShard,
    RowWiseSharding,
    ShardingError,
    ShardingPlan,
    TableWiseSharding,
    minibatch_bounds,
    sample_owner,
)
from .rowwise import (
    RowWiseBaselineBackward,
    RowWiseBaselineRetrieval,
    RowWisePGASBackward,
    RowWisePGASRetrieval,
    RowWiseWorkload,
    build_rowwise_workloads,
    rowwise_baseline_functional_forward,
    rowwise_functional_backward,
    rowwise_functional_forward_partials,
    rowwise_pgas_functional_forward,
)
from .train_pipeline import DLRMTrainingPipeline, TrainStepTiming
from .verify import VerificationError, VerificationReport, verify_backend_equivalence
from .workload import (
    DeviceWorkload,
    alltoall_split_bytes,
    build_device_workloads,
    lengths_from_batch,
    unpack_bytes_received,
)

__all__ = [
    "AggregatorSpec",
    "AsyncAggregator",
    "BackendInfo",
    "BackendName",
    "BackendSpec",
    "CANONICAL_FEATURE_ORDER",
    "FeatureSpec",
    "build_adapter",
    "build_backend",
    "parse_backend_name",
    "BaselineBackward",
    "BaselineRetrieval",
    "PGASFusedBackward",
    "baseline_functional_backward",
    "pgas_functional_backward",
    "reference_backward",
    "table_row_gradients",
    "DeviceWorkload",
    "DistributedEmbedding",
    "EMB_MIN_WAVES_FOR_PEAK",
    "EMB_SAMPLES_PER_BLOCK",
    "ForwardResult",
    "NCCL_ALLTOALL_EFFICIENCY",
    "DLRMInferencePipeline",
    "PGASFusedRetrieval",
    "PhaseTiming",
    "PipelineConfig",
    "PipelineTiming",
    "PlacementError",
    "PlacementReport",
    "RowWiseBaselineBackward",
    "RowWiseBaselineRetrieval",
    "RowWisePGASBackward",
    "RowWisePGASRetrieval",
    "RowWiseWorkload",
    "build_rowwise_workloads",
    "min_devices_required",
    "plan_table_wise",
    "rowwise_baseline_functional_forward",
    "rowwise_functional_backward",
    "rowwise_functional_forward_partials",
    "rowwise_pgas_functional_forward",
    "REMOTE_WRITE_KERNEL_DRAG",
    "RetrievalBackend",
    "RowShard",
    "RowWiseSharding",
    "InferenceServer",
    "PRESETS",
    "RunSpec",
    "SchedulerSpec",
    "available_backends",
    "backend_spec",
    "preset_runspec",
    "register_backend",
    "SendBlock",
    "ServingResult",
    "ServingSpec",
    "ShardedEmbeddingTables",
    "ShardingError",
    "ShardingPlan",
    "TableWiseSharding",
    "DLRMTrainingPipeline",
    "TrainStepTiming",
    "UNPACK_BANDWIDTH",
    "VerificationError",
    "VerificationReport",
    "verify_backend_equivalence",
    "alltoall_split_bytes",
    "baseline_functional_forward",
    "build_device_workloads",
    "lengths_from_batch",
    "minibatch_bounds",
    "pgas_functional_forward",
    "reference_forward",
    "sample_owner",
    "unpack_bytes_received",
]
