"""The PGAS fused retrieval (timed path) — the paper's contribution.

One fused CUDA kernel per device (Listing 2): as each wave of thread
blocks retires, the pooled embedding vectors belonging to *remote*
mini-batches are written straight to the owning GPU's output tensor as
one-sided small messages; local vectors are stored in place.  After its
kernel finishes, each device issues a ``quiet`` (drain outstanding puts)
and all devices rendezvous — the ``cudaStreamSynchronize`` loop at the end
of ``PGAS_EMB_forward``.

There is no separate communication phase and no unpack: the only exposed
communication cost is whatever message drain outlives the computation,
plus the fixed quiet/rendezvous overhead.  The in-kernel cost of issuing
remote writes is modelled by stretching the kernel body by
``REMOTE_WRITE_KERNEL_DRAG`` × (remote wire time) — see calibration notes.

Phase accounting: the whole pass is a single ``fused`` span; the
:class:`~repro.core.baseline.PhaseTiming` fields report it as ``compute``
(overlapped) with the exposed tail in ``sync_unpack`` (quiet + barrier),
so breakdown plots can show PGAS as one bar, as the paper does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .aggregator import AggregatorSpec

from ..comm.pgas import PGASContext, PGASSpec
from ..simgpu.cluster import Cluster
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.interconnect import wire_bytes
from ..simgpu.kernel import WaveInfo, execute_kernel
from .baseline import PhaseTiming
from .calibration import REMOTE_WRITE_KERNEL_DRAG
from .workload import DeviceWorkload

__all__ = ["PGASFusedRetrieval"]


class PGASFusedRetrieval:
    """Timed EMB forward using fused one-sided communication.

    With ``aggregator_spec`` set, remote writes route through the §V
    :class:`~repro.core.aggregator.AsyncAggregator` instead of leaving as
    individual small messages — the multi-node variant
    (``aggregator.store(outputs[output_idx], sum, pe)``).
    """

    def __init__(
        self,
        cluster: Cluster,
        pgas_spec: Optional[PGASSpec] = None,
        remote_write_drag: float = REMOTE_WRITE_KERNEL_DRAG,
        aggregator_spec: Optional["AggregatorSpec"] = None,
    ):
        if remote_write_drag < 0:
            raise ValueError("remote_write_drag must be non-negative")
        self.cluster = cluster
        self.pgas = PGASContext(cluster, pgas_spec)
        self.remote_write_drag = remote_write_drag
        self.aggregator = None
        if aggregator_spec is not None:
            from .aggregator import AsyncAggregator

            self.aggregator = AsyncAggregator(self.pgas, aggregator_spec)

    # -- single batch ---------------------------------------------------------------

    def run_batch(self, workloads: Sequence[DeviceWorkload]) -> PhaseTiming:
        """Simulate one fused EMB forward; returns its phase timing."""
        self._check(workloads)
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def run_batches(self, workloads_iter) -> PhaseTiming:
        """Accumulate over an iterable of per-batch workload lists."""
        total = PhaseTiming()
        for workloads in workloads_iter:
            total.add(self.run_batch(workloads))
        return total

    # -- internals -------------------------------------------------------------------

    def _check(self, workloads: Sequence[DeviceWorkload]) -> None:
        if len(workloads) != self.cluster.n_devices:
            raise ValueError(
                f"got {len(workloads)} workloads for {self.cluster.n_devices} devices"
            )
        for i, wl in enumerate(workloads):
            if wl.device_id != i:
                raise ValueError(f"workload {i} has device_id {wl.device_id}")

    def _kernel_drag_ns(self, wl: DeviceWorkload, link_bandwidth: float) -> float:
        """In-kernel slowdown from issuing this device's remote writes."""
        if self.remote_write_drag == 0.0 or wl.remote_output_bytes == 0:
            return 0.0
        spec = self.pgas.spec
        wire = wire_bytes(wl.remote_output_bytes, spec.message_bytes, spec.header_bytes)
        return self.remote_write_drag * wire / link_bandwidth

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ) -> ProcessGenerator:
        """Process generator for one batch — composable into larger host
        programs (e.g. the full-pipeline simulation overlaps this with the
        dense MLP, as in the paper's Fig. 4).  ``timing`` is filled in at
        completion.  ``stream_suffix`` selects a per-batch stream set so
        concurrent batches don't serialise on one FIFO queue."""
        engine = cluster.engine
        prof = cluster.profiler
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        t0 = engine.now

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            waves_dst = wl.wave_dst_bytes(dev.spec.concurrent_blocks)
            # Link bandwidth toward an arbitrary peer (homogeneous fabric);
            # used only for the drag model.
            if G > 1:
                peer = (dev.id + 1) % G
                link_bw = cluster.topology.link_spec(dev.id, peer).bandwidth
                drag = self._kernel_drag_ns(wl, link_bw)
            else:
                drag = 0.0
            base = wl.kernel_spec("pgas_fused_emb")
            kspec = type(base)(
                name=base.name,
                num_blocks=base.num_blocks,
                bytes_read=base.bytes_read,
                bytes_written=base.bytes_written,
                flops=base.flops,
                block_weights=base.block_weights,
                stretch_ns=drag,
                min_waves_for_peak=base.min_waves_for_peak,
            )

            def on_wave(info: WaveInfo, dev_id: int = dev.id, wdst: np.ndarray = waves_dst) -> None:
                # Each retiring wave's remote vectors leave immediately as
                # one-sided small messages (Listing 2's sum.store(..., pe)),
                # or via the aggregator in the multi-node variant.
                for dst in range(G):
                    if dst == dev_id:
                        continue
                    payload = float(wdst[info.index, dst])
                    if payload <= 0:
                        continue
                    if self.aggregator is not None:
                        self.aggregator.store(dev_id, dst, payload)
                    else:
                        self.pgas.put(dev_id, dst, payload)

            stream = dev.stream("default" + stream_suffix)
            stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(
                stream.submit(
                    lambda d=dev, k=kspec, cb=on_wave: execute_kernel(d, k, on_wave=cb),
                    name=kspec.name,
                )
            )

        yield engine.all_of([op.done for op in ops])

        # Multi-node variant: push any residual aggregation buffers out
        # before quiescing (the kernel-end flush of ref [7]).
        if self.aggregator is not None:
            self.aggregator.flush_all()

        # Completion: per-PE quiet (drain outstanding puts), then rendezvous.
        if G > 1:
            quiets = [
                engine.process(self.pgas.quiet(dev.id), name=f"quiet{dev.id}")
                for dev in cluster.devices
            ]
            yield engine.all_of(quiets)
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now

        prof.record_span("pgas_fused", "fused", -1, t0, t1)
        timing.compute_ns = t1 - t0  # fully fused: one overlapped phase
        timing.comm_ns = 0.0
        timing.sync_unpack_ns = 0.0
        timing.total_ns = t1 - t0
