"""The PGAS fused retrieval (timed path) — the paper's contribution.

One fused CUDA kernel per device (Listing 2): as each wave of thread
blocks retires, the pooled embedding vectors belonging to *remote*
mini-batches are written straight to the owning GPU's output tensor as
one-sided small messages; local vectors are stored in place.  After its
kernel finishes, each device issues a ``quiet`` (drain outstanding puts)
and all devices rendezvous — the ``cudaStreamSynchronize`` loop at the end
of ``PGAS_EMB_forward``.

There is no separate communication phase and no unpack: the only exposed
communication cost is whatever message drain outlives the computation,
plus the fixed quiet/rendezvous overhead.  The in-kernel cost of issuing
remote writes is modelled by stretching the kernel body by
``REMOTE_WRITE_KERNEL_DRAG`` × (remote wire time) — see calibration notes.

Phase accounting: the whole pass is a single ``fused`` span; the
:class:`~repro.core.baseline.PhaseTiming` fields report it as ``compute``
(overlapped) with the exposed tail in ``sync_unpack`` (quiet + barrier),
so breakdown plots can show PGAS as one bar, as the paper does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm.hier import HierSpec
    from .aggregator import AggregatorSpec

from ..comm.pgas import PGASContext, PGASSpec
from ..simgpu.cluster import Cluster
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.interconnect import wire_bytes
from ..simgpu.kernel import WaveInfo, execute_kernel
from .baseline import PhaseTiming
from .calibration import REMOTE_WRITE_KERNEL_DRAG
from .workload import DeviceWorkload

__all__ = ["PGASFusedRetrieval"]


class PGASFusedRetrieval:
    """Timed EMB forward using fused one-sided communication.

    With ``aggregator_spec`` set, remote writes route through the §V
    :class:`~repro.core.aggregator.AsyncAggregator` instead of leaving as
    individual small messages — the multi-node variant
    (``aggregator.store(outputs[output_idx], sum, pe)``).

    With ``hier_spec`` set (and active for this device count), *off-node*
    writes instead route through the hierarchical
    :class:`~repro.comm.hier.NodeStagingRouter`: forwarded to the node
    leader over the fast fabric, staged per destination node, and crossed
    over the NIC as one coalesced message stream per node pair.  Same-node
    remote writes keep their direct path (aggregator or plain put).  An
    inactive spec leaves every write on the flat path, event-identical.
    """

    def __init__(
        self,
        cluster: Cluster,
        pgas_spec: Optional[PGASSpec] = None,
        remote_write_drag: float = REMOTE_WRITE_KERNEL_DRAG,
        aggregator_spec: Optional["AggregatorSpec"] = None,
        hier_spec: Optional["HierSpec"] = None,
    ):
        if remote_write_drag < 0:
            raise ValueError("remote_write_drag must be non-negative")
        self.cluster = cluster
        self.pgas = PGASContext(cluster, pgas_spec)
        self.remote_write_drag = remote_write_drag
        self.aggregator = None
        if aggregator_spec is not None:
            from .aggregator import AsyncAggregator

            self.aggregator = AsyncAggregator(self.pgas, aggregator_spec)
        self.router = None
        if hier_spec is not None:
            hier_spec.validate_for(cluster.n_devices)
            if hier_spec.active(cluster.n_devices):
                from ..comm.hier import NodeStagingRouter

                self.router = NodeStagingRouter(self.pgas, hier_spec)

    # -- single batch ---------------------------------------------------------------

    def run_batch(self, workloads: Sequence[DeviceWorkload]) -> PhaseTiming:
        """Simulate one fused EMB forward; returns its phase timing."""
        self._check(workloads)
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def run_batches(self, workloads_iter) -> PhaseTiming:
        """Accumulate over an iterable of per-batch workload lists."""
        total = PhaseTiming()
        for workloads in workloads_iter:
            total.add(self.run_batch(workloads))
        return total

    # -- internals -------------------------------------------------------------------

    def _check(self, workloads: Sequence[DeviceWorkload]) -> None:
        if len(workloads) != self.cluster.n_devices:
            raise ValueError(
                f"got {len(workloads)} workloads for {self.cluster.n_devices} devices"
            )
        for i, wl in enumerate(workloads):
            if wl.device_id != i:
                raise ValueError(f"workload {i} has device_id {wl.device_id}")

    def _kernel_drag_ns(self, wl: DeviceWorkload, link_bandwidth: float) -> float:
        """In-kernel slowdown from issuing this device's remote writes."""
        if self.remote_write_drag == 0.0 or wl.remote_output_bytes == 0:
            return 0.0
        spec = self.pgas.spec
        wire = wire_bytes(wl.remote_output_bytes, spec.message_bytes, spec.header_bytes)
        return self.remote_write_drag * wire / link_bandwidth

    def _effective_link_bandwidth(self, wl: DeviceWorkload) -> Optional[float]:
        """Traffic-weighted first-hop bandwidth for the drag model.

        Each destination's bytes leave the kernel over that destination's
        *first hop*: the direct link normally, the fast-fabric hop to the
        node leader when the hierarchical router stages the write off-node
        (a leader's own staged writes start as local buffer appends — no
        first-hop wire drag).  Weighting by ``wl.output_bytes_by_dst``
        (harmonic mean over destinations) replaces the old arbitrary-peer
        sample, which mispriced the drag on heterogeneous multinode
        fabrics — an NVLink neighbour masked the NIC cost or vice versa.
        On a homogeneous fabric every destination shares one bandwidth
        and that value is returned exactly (no floating-point drift).
        """
        topology = self.cluster.topology
        by_dst = wl.output_bytes_by_dst
        dev_id = wl.device_id
        hier = self.router.hier if self.router is not None else None
        shares: List[tuple] = []
        for dst in range(self.cluster.n_devices):
            if dst == dev_id:
                continue
            nbytes = float(by_dst[dst])
            if nbytes <= 0:
                continue
            if hier is not None and not hier.same_node(dev_id, dst):
                leader = hier.leader_of(hier.node_of(dev_id))
                if dev_id == leader:
                    continue
                bw = topology.link_spec(dev_id, leader).bandwidth
            else:
                bw = topology.link_spec(dev_id, dst).bandwidth
            shares.append((nbytes, bw))
        if not shares:
            return None
        first_bw = shares[0][1]
        if all(bw == first_bw for _, bw in shares):
            return first_bw
        total = sum(nbytes for nbytes, _ in shares)
        return total / sum(nbytes / bw for nbytes, bw in shares)

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ) -> ProcessGenerator:
        """Process generator for one batch — composable into larger host
        programs (e.g. the full-pipeline simulation overlaps this with the
        dense MLP, as in the paper's Fig. 4).  ``timing`` is filled in at
        completion.  ``stream_suffix`` selects a per-batch stream set so
        concurrent batches don't serialise on one FIFO queue."""
        engine = cluster.engine
        prof = cluster.profiler
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        t0 = engine.now

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            waves_dst = wl.wave_dst_bytes(dev.spec.concurrent_blocks)
            # Traffic-weighted first-hop bandwidth; used only for the drag
            # model (zero-traffic devices pay no drag).
            link_bw = self._effective_link_bandwidth(wl) if G > 1 else None
            drag = self._kernel_drag_ns(wl, link_bw) if link_bw is not None else 0.0
            base = wl.kernel_spec("pgas_fused_emb")
            kspec = type(base)(
                name=base.name,
                num_blocks=base.num_blocks,
                bytes_read=base.bytes_read,
                bytes_written=base.bytes_written,
                flops=base.flops,
                block_weights=base.block_weights,
                stretch_ns=drag,
                min_waves_for_peak=base.min_waves_for_peak,
            )

            def on_wave(info: WaveInfo, dev_id: int = dev.id, wdst: np.ndarray = waves_dst) -> None:
                # Each retiring wave's remote vectors leave immediately as
                # one-sided small messages (Listing 2's sum.store(..., pe)),
                # or via the aggregator in the multi-node variant.
                for dst in range(G):
                    if dst == dev_id:
                        continue
                    payload = float(wdst[info.index, dst])
                    if payload <= 0:
                        continue
                    if self.router is not None and not self.router.hier.same_node(
                        dev_id, dst
                    ):
                        self.router.put(dev_id, dst, payload)
                    elif self.aggregator is not None:
                        self.aggregator.store(dev_id, dst, payload)
                    else:
                        self.pgas.put(dev_id, dst, payload)

            stream = dev.stream("default" + stream_suffix)
            stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(
                stream.submit(
                    lambda d=dev, k=kspec, cb=on_wave: execute_kernel(d, k, on_wave=cb),
                    name=kspec.name,
                )
            )

        yield engine.all_of([op.done for op in ops])

        # Multi-node variant: push any residual aggregation/staging buffers
        # out before quiescing (the kernel-end flush of ref [7]).
        if self.router is not None:
            self.router.flush_all()
        if self.aggregator is not None:
            self.aggregator.flush_all()

        # Completion: per-PE quiet (drain outstanding puts), then rendezvous.
        if G > 1:
            quiets = [
                engine.process(self.pgas.quiet(dev.id), name=f"quiet{dev.id}")
                for dev in cluster.devices
            ]
            yield engine.all_of(quiets)
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now

        prof.record_span("pgas_fused", "fused", -1, t0, t1)
        timing.compute_ns = t1 - t0  # fully fused: one overlapped phase
        timing.comm_ns = 0.0
        timing.sync_unpack_ns = 0.0
        timing.total_ns = t1 - t0
