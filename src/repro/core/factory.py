"""Unified backend factory: one canonical way to compose feature stacks.

Historically every call site composed its own wrapper stack: ``cli.py``
picked constructor kwargs by hand, each ``bench/*sweep`` built its
``DistributedEmbedding`` with the one feature kwarg it cared about, and
the registry entries in each feature package duplicated the
``<feature>_retrieval_for(emb, base)`` plumbing.  This module is the
single place that knows how a backend name decomposes and how the
feature wrappers attach:

* :class:`FeatureSpec` — the one bag of per-feature configs
  (cache / resilience / compression / replication / reshard / hier /
  obs) that
  :class:`~repro.core.retrieval.DistributedEmbedding` now takes as its
  ``features=`` keyword;
* :func:`parse_backend_name` — splits ``"<base>+<feature>"`` names and
  rejects malformed stacks (empty segments, unknown features, duplicate
  features, multi-feature stacks) with errors that name the offending
  stack;
* :func:`build_adapter` — builds the adapter for any registered backend
  name from the parsed form; the per-package registry entries are thin
  aliases over this function;
* :func:`build_backend` — the top-level entry: a fully-composed
  :class:`~repro.core.retrieval.DistributedEmbedding` from a
  :class:`~repro.core.runspec.RunSpec` alone, adapter pre-built so
  composition errors surface at construction, not first forward.

``CANONICAL_FEATURE_ORDER`` fixes the composition order feature wrappers
take when a composed backend is ever registered: innermost first.  The
registry still refuses unregistered multi-feature stacks — the order
constant makes the refusal principled instead of arbitrary.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

__all__ = [
    "CANONICAL_FEATURE_ORDER",
    "FeatureSpec",
    "build_adapter",
    "build_backend",
    "parse_backend_name",
]

#: Composition order for feature wrappers, innermost (closest to the base
#: communication strategy) first.  Single-feature stacks are unaffected;
#: any explicitly registered composed backend must wrap in this order.
CANONICAL_FEATURE_ORDER: Tuple[str, ...] = (
    "hier",
    "cache",
    "compress",
    "resilient",
    "replicated",
    "reshard",
)

#: feature suffix → (defining module, adapter-builder function).  The
#: module import is deferred to adapter build time so ``repro.core`` never
#: imports the feature packages (they import *it* to register themselves).
_FEATURE_BUILDERS: Dict[str, Tuple[str, str]] = {
    "hier": ("repro.hier", "hier_retrieval_for"),
    "cache": ("repro.cache", "cached_retrieval_for"),
    "compress": ("repro.compress", "compressed_retrieval_for"),
    "resilient": ("repro.faults", "resilient_retrieval_for"),
    "replicated": ("repro.replication", "replicated_retrieval_for"),
    "reshard": ("repro.reshard", "reshard_retrieval_for"),
}

@dataclass(frozen=True)
class FeatureSpec:
    """Per-feature configuration bundle of one ``DistributedEmbedding``.

    Each field configures the wrapper the matching ``+<feature>`` backend
    suffix selects; fields for features the chosen backend does not use
    are ignored (a spec can be shared across A/B backend comparisons).
    Field types are validated where they are consumed — the ``obs``
    section at :class:`~repro.core.retrieval.DistributedEmbedding`
    construction, each feature config when its adapter is built — so a
    ``FeatureSpec`` never imports feature packages it does not mention.

    Attributes
    ----------
    cache:
        :class:`repro.cache.CacheConfig` for the ``"+cache"`` backends.
    resilience:
        :class:`repro.faults.ResilienceSpec` for ``"+resilient"``.
    compression:
        :class:`repro.compress.CompressionSpec` for ``"+compress"``.
    replication:
        :class:`repro.replication.ReplicationSpec` for ``"+replicated"``.
    reshard:
        :class:`repro.reshard.ReshardSpec` for ``"+reshard"``.
    hier:
        :class:`repro.comm.hier.HierSpec` for the ``"+hier"`` backends
        (topology-aware hierarchical routing: node geometry, staging
        flush policy, coalesced NIC framing).
    obs:
        :class:`repro.obs.TraceSpec`; enables trace-context propagation
        for every backend (None or disabled stays bit-identical).
    """

    cache: Optional[object] = None
    resilience: Optional[object] = None
    compression: Optional[object] = None
    replication: Optional[object] = None
    reshard: Optional[object] = None
    hier: Optional[object] = None
    obs: Optional[object] = None

    def configured(self) -> Tuple[str, ...]:
        """Names of the fields that are set, in declaration order."""
        return tuple(f.name for f in fields(self) if getattr(self, f.name) is not None)


def parse_backend_name(name: str) -> Tuple[str, Tuple[str, ...]]:
    """Split a backend name into ``(base, features)`` per the contract.

    Enforces the backend-name contract mechanically: non-empty segments,
    known feature suffixes, no duplicates, and at most one feature (a
    longer stack has no registered composition — the error names the
    offending stack and the canonical order a registered composition
    would have to follow).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    parts = name.split("+")
    if any(not part for part in parts):
        raise ValueError(
            f"malformed backend name {name!r}: empty base or feature segment "
            f"(expected '<base>' or '<base>+<feature>')"
        )
    base, features = parts[0], tuple(parts[1:])
    unknown = [f for f in features if f not in _FEATURE_BUILDERS]
    if unknown:
        raise ValueError(
            f"malformed backend stack {name!r}: unknown feature(s) "
            f"{', '.join(repr(f) for f in unknown)}; known features: "
            f"{', '.join(CANONICAL_FEATURE_ORDER)}"
        )
    seen = set()
    dups = [f for f in features if f in seen or seen.add(f)]
    if dups:
        raise ValueError(
            f"malformed backend stack {name!r}: duplicate feature(s) "
            f"{', '.join(repr(f) for f in sorted(set(dups)))}"
        )
    if len(features) >= 2:
        raise ValueError(
            f"backend stack {name!r} composes {len(features)} features "
            f"({' + '.join(features)}); multi-feature stacks are only valid "
            f"when registered explicitly, wrapping in canonical order "
            f"{' -> '.join(CANONICAL_FEATURE_ORDER)} (innermost first)"
        )
    return base, features


def build_adapter(emb, name: str):
    """Build the retrieval adapter for backend ``name`` bound to ``emb``.

    The shared implementation behind every registered feature backend:
    registry entries are thin ``lambda emb: build_adapter(emb, name)``
    aliases, so composition lives in exactly one place.  Bare base names
    fall through to the registry's own factories.
    """
    base, features = parse_backend_name(name)
    if not features:
        from .retrieval import backend_spec

        return backend_spec(base).factory(emb)
    module_name, builder_name = _FEATURE_BUILDERS[features[0]]
    builder = getattr(importlib.import_module(module_name), builder_name)
    return builder(emb, base)


def build_backend(
    runspec,
    *,
    materialize: bool = False,
    cluster=None,
    rng=None,
    **overrides,
):
    """A fully-composed :class:`~repro.core.retrieval.DistributedEmbedding`
    from a :class:`~repro.core.runspec.RunSpec` alone.

    Every feature section the spec carries (cache, resilience,
    compression, replication, reshard, obs) lands in the instance's
    :class:`FeatureSpec`; the backend adapter is built eagerly, so a
    malformed stack or a bad config fails here, loudly, instead of at the
    first forward.  ``overrides`` pass through to the constructor (e.g.
    ``backend=...`` for A/B runs on one spec).
    """
    from .retrieval import DistributedEmbedding

    features = FeatureSpec(
        cache=runspec.cache,
        resilience=runspec.resilience,
        compression=runspec.compression,
        replication=runspec.replication,
        reshard=runspec.reshard,
        hier=runspec.hier,
        obs=runspec.obs,
    )
    kwargs = dict(
        backend=runspec.backend,
        features=features,
        materialize=materialize,
        cluster=cluster,
        rng=rng,
    )
    kwargs.update(overrides)
    emb = DistributedEmbedding(runspec.workload, runspec.n_devices, **kwargs)
    emb.backend_adapter()
    return emb
