"""Asynchronous communication aggregator — the paper's §V multi-node plan.

Over NVLink, 256-byte one-sided messages are cheap; over an inter-node NIC
their headers and per-message latency dominate.  The paper proposes (citing
its authors' SC'22 aggregator) replacing ``sum.store(outputs[idx], pe)``
with ``aggregator.store(outputs[idx], sum, pe)``: writes land in a local
per-destination staging buffer, and the buffer is flushed as one large
message when it reaches a size threshold **or** when the oldest entry has
waited too long.

:class:`AsyncAggregator` implements exactly that contract on the
simulator: :meth:`store` accumulates payload bytes per destination;
flushes happen on the size trigger, on the max-wait timer, or explicitly
via :meth:`flush_all` (called before ``quiet``).  Flushed batches travel
as a single large-framed transfer, amortising headers — the ablation bench
shows the small-message vs. aggregated crossover as the link gets slower
(NVLink → PCIe → NIC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..comm.pgas import PGASContext
from ..simgpu.engine import Event
from ..simgpu.units import KiB, us

__all__ = ["AggregatorSpec", "AsyncAggregator"]


@dataclass(frozen=True)
class AggregatorSpec:
    """Flush policy of the aggregator.

    Attributes
    ----------
    flush_bytes:
        Size trigger: a destination's buffer flushes when it reaches this
        many payload bytes.
    max_wait_ns:
        Time trigger: a buffer holding data flushes at most this long after
        its first (oldest) pending byte arrived — the paper's
        "user-defined aggregation size and maximum wait time".
    flushed_message_bytes / flushed_header_bytes:
        Wire framing of an aggregated flush (large frames, one header per
        ``flushed_message_bytes``).
    store_overhead_ns:
        Local buffer-append cost per store call (tiny: a shared-memory
        write, not a network op).
    """

    flush_bytes: int = 64 * KiB
    max_wait_ns: float = 50 * us
    flushed_message_bytes: int = 64 * KiB
    flushed_header_bytes: int = 64
    store_overhead_ns: float = 0.05 * us

    def __post_init__(self) -> None:
        if self.flush_bytes <= 0 or self.flushed_message_bytes <= 0:
            raise ValueError("flush sizes must be positive")
        if self.max_wait_ns <= 0:
            raise ValueError("max_wait_ns must be positive")


class AsyncAggregator:
    """Per-source staging buffers that batch one-sided writes."""

    def __init__(self, pgas: PGASContext, spec: Optional[AggregatorSpec] = None):
        self.pgas = pgas
        self.spec = spec or AggregatorSpec()
        self.cluster = pgas.cluster
        # (src, dst) -> pending payload bytes
        self._pending: Dict[Tuple[int, int], float] = {}
        # (src, dst) -> engine time of the oldest pending byte
        self._oldest: Dict[Tuple[int, int], float] = {}
        # (src, dst) -> scheduled timer entry (cancellable)
        self._timers: Dict[Tuple[int, int], object] = {}
        self.flushes = 0
        self.stores = 0

    # -- the Listing-2 replacement call ------------------------------------------

    def store(self, src: int, dst: int, payload_bytes: float) -> None:
        """Buffer a one-sided write (``aggregator.store(..., pe)``).

        Local destinations are rejected — local stores never needed
        aggregation in the first place.
        """
        if src == dst:
            raise ValueError("aggregating a local store makes no sense")
        if payload_bytes < 0:
            raise ValueError("payload must be non-negative")
        if payload_bytes == 0:
            return
        key = (src, dst)
        engine = self.cluster.engine
        self.stores += 1
        if key not in self._pending:
            self._pending[key] = 0.0
            self._oldest[key] = engine.now
            self._arm_timer(key)
        self._pending[key] += payload_bytes
        if self._pending[key] >= self.spec.flush_bytes:
            self.flush(src, dst)

    # -- flushing --------------------------------------------------------------------

    def flush(self, src: int, dst: int) -> Optional[Event]:
        """Send a destination buffer now as one large-framed transfer."""
        key = (src, dst)
        payload = self._pending.pop(key, 0.0)
        self._oldest.pop(key, None)
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancelled = True  # type: ignore[attr-defined]
        if payload <= 0:
            return None
        self.flushes += 1
        ev = self.cluster.interconnect.transfer(
            src,
            dst,
            payload,
            message_bytes=self.spec.flushed_message_bytes,
            header_bytes=self.spec.flushed_header_bytes,
            counter=PGASContext.COUNTER,
        )
        # Register with the PGAS outstanding set so quiet() drains flushes.
        self.pgas.register_outstanding(src, ev)
        return ev

    def flush_all(self, src: Optional[int] = None) -> List[Event]:
        """Flush every pending buffer (of one source, or all)."""
        keys = [k for k in list(self._pending) if src is None or k[0] == src]
        events = []
        for s, d in keys:
            ev = self.flush(s, d)
            if ev is not None:
                events.append(ev)
        return events

    def pending_bytes(self, src: int, dst: int) -> float:
        """Currently buffered payload for a pair."""
        return self._pending.get((src, dst), 0.0)

    # -- internals --------------------------------------------------------------------

    def _arm_timer(self, key: Tuple[int, int]) -> None:
        """Schedule the max-wait flush for a freshly non-empty buffer."""
        engine = self.cluster.engine

        def on_timer(k: Tuple[int, int] = key) -> None:
            # Fire only if the buffer is still the same generation (a flush
            # removes the key; a new store re-arms a new timer).
            if k in self._pending:
                self.flush(*k)

        self._timers[key] = engine.call_in(self.spec.max_wait_ns, on_timer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AsyncAggregator pending_pairs={len(self._pending)} "
            f"stores={self.stores} flushes={self.flushes}>"
        )
