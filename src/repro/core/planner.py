"""Capacity-aware table placement (the planning step before sharding).

The paper's motivation is that embedding tables outgrow one GPU ("the
major driving force to use multiple GPUs for DLRM"); with the uniform
tables of its experiments, contiguous assignment is trivially balanced.
Real table sets (see :func:`repro.dlrm.heterogeneous.criteo_like`) are
skewed over six orders of magnitude, and naive contiguous placement can
overflow one device while leaving others empty.

:func:`plan_table_wise` solves the practical problem: given table configs
and a device spec, pick the minimal device count and a balanced
assignment.

* placement: LPT (longest-processing-time) greedy — sort tables by
  descending footprint, always assign to the least-loaded device; a
  classic 4/3-approximation of balanced partitioning.
* capacity: each device keeps ``reserve_fraction`` of HBM free for
  activations, buffers, and CUDA overheads.
* output: a :class:`PlacementReport` wrapping an explicit
  :class:`~repro.core.sharding.TableWiseSharding` ready for
  :class:`~repro.core.retrieval.DistributedEmbedding`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dlrm.embedding import EmbeddingTableConfig
from ..simgpu.device import DeviceSpec, V100_SPEC
from .sharding import TableWiseSharding

__all__ = ["PlacementError", "PlacementReport", "plan_table_wise", "min_devices_required"]


class PlacementError(ValueError):
    """No feasible placement exists under the given constraints."""


@dataclass(frozen=True)
class PlacementReport:
    """A feasible placement and its balance statistics."""

    plan: TableWiseSharding
    device_spec: DeviceSpec
    reserve_fraction: float

    @property
    def n_devices(self) -> int:
        """Devices used."""
        return self.plan.n_devices

    @property
    def per_device_bytes(self) -> List[int]:
        """Weight bytes per device."""
        return [self.plan.memory_bytes(d) for d in range(self.n_devices)]

    @property
    def utilization(self) -> List[float]:
        """Fraction of each device's usable budget consumed."""
        budget = self.device_spec.mem_bytes * (1.0 - self.reserve_fraction)
        return [b / budget for b in self.per_device_bytes]

    @property
    def imbalance(self) -> float:
        """max/mean per-device load (1.0 = perfectly balanced)."""
        loads = self.per_device_bytes
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0

    def summary(self) -> str:
        """Human-readable placement table."""
        lines = [
            f"placement: {self.plan.num_tables} tables on {self.n_devices} x "
            f"{self.device_spec.name} (reserve {self.reserve_fraction:.0%})"
        ]
        dev_width = len(str(self.n_devices - 1))
        for d in range(self.n_devices):
            tables = self.plan.tables_on(d)
            lines.append(
                f"  dev {d:>{dev_width}}: {len(tables):3d} tables, "
                f"{self.per_device_bytes[d] / 2**30:6.2f} GiB "
                f"({self.utilization[d]:5.1%} of budget)"
            )
        lines.append(f"  imbalance (max/mean): {self.imbalance:.3f}")
        return "\n".join(lines)


def _usable_budget(spec: DeviceSpec, reserve_fraction: float) -> float:
    if not (0.0 <= reserve_fraction < 1.0):
        raise ValueError(f"reserve_fraction must be in [0, 1), got {reserve_fraction}")
    return spec.mem_bytes * (1.0 - reserve_fraction)


def min_devices_required(
    table_configs: Sequence[EmbeddingTableConfig],
    device_spec: DeviceSpec = V100_SPEC,
    reserve_fraction: float = 0.1,
) -> int:
    """Lower bound on devices: total bytes / usable budget (ceil).

    The LPT packing may need one more than this bound in adversarial cases;
    :func:`plan_table_wise` searches upward from here.
    """
    budget = _usable_budget(device_spec, reserve_fraction)
    biggest = max(t.nbytes for t in table_configs)
    if biggest > budget:
        raise PlacementError(
            f"table of {biggest} B exceeds a single device's usable budget "
            f"({budget:.0f} B); table-wise sharding cannot place it — "
            "use row-wise sharding for that table"
        )
    total = sum(t.nbytes for t in table_configs)
    return max(1, -(-int(total) // int(budget)))


def plan_table_wise(
    table_configs: Sequence[EmbeddingTableConfig],
    n_devices: Optional[int] = None,
    device_spec: DeviceSpec = V100_SPEC,
    reserve_fraction: float = 0.1,
    max_devices: int = 64,
) -> PlacementReport:
    """Balanced, capacity-feasible table-wise placement.

    With ``n_devices`` given, places onto exactly that many (raising
    :class:`PlacementError` if infeasible); otherwise finds the smallest
    feasible count ≤ ``max_devices``.
    """
    if not table_configs:
        raise ValueError("nothing to place")
    budget = _usable_budget(device_spec, reserve_fraction)

    def try_pack(G: int) -> Optional[dict]:
        # LPT: biggest table first onto the least-loaded device.
        heap = [(0.0, d) for d in range(G)]
        heapq.heapify(heap)
        owners = {}
        order = sorted(table_configs, key=lambda t: t.nbytes, reverse=True)
        for cfg in order:
            load, dev = heapq.heappop(heap)
            if load + cfg.nbytes > budget:
                return None
            owners[cfg.name] = dev
            heapq.heappush(heap, (load + cfg.nbytes, dev))
        return owners

    if n_devices is not None:
        owners = try_pack(n_devices)
        if owners is None:
            raise PlacementError(
                f"{len(table_configs)} tables "
                f"({sum(t.nbytes for t in table_configs) / 2**30:.1f} GiB) do not fit "
                f"on {n_devices} x {device_spec.name} with "
                f"{reserve_fraction:.0%} reserve"
            )
        plan = TableWiseSharding.from_assignment(table_configs, n_devices, owners)
        return PlacementReport(plan, device_spec, reserve_fraction)

    start = min_devices_required(table_configs, device_spec, reserve_fraction)
    for G in range(start, max_devices + 1):
        owners = try_pack(G)
        if owners is not None:
            plan = TableWiseSharding.from_assignment(table_configs, G, owners)
            return PlacementReport(plan, device_spec, reserve_fraction)
    raise PlacementError(
        f"no feasible placement within {max_devices} devices"
    )
