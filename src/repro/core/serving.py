"""Inference-serving simulation: continuous batching, tail latency, SLOs.

The paper motivates its optimisation with inference economics (DLRM is
"over 70% of inference time" at Meta, citing DeepRecSys), where what
matters is not batch throughput but *latency under load*: requests arrive
continuously, a batcher groups them, and the EMB layer's exposed
communication sits directly on the tail.

:class:`InferenceServer` runs that loop on the simulator:

* requests arrive as a Poisson process at ``arrival_qps``;
* a batch former seals batches per the :class:`SchedulerSpec` policy —
  ``"size"`` (wait for ``max_batch``), ``"timeout"`` (wait
  ``batch_window_ns`` after the head request), or ``"hybrid"``
  (whichever fires first);
* a continuous-batching dispatcher keeps up to ``max_in_flight`` batches
  executing concurrently, each on its own per-batch stream set (see
  :class:`~repro.simgpu.stream.StreamPool`): while batch k's EMB output
  writes drain over the interconnect, batch k+1's kernels are already
  running on the second stream set;
* per-request latency = completion − arrival, decomposed into **form**
  (arrival → batch ready), **queue** (ready → dispatched, i.e. waiting
  for a free in-flight slot), and **execute** (dispatched → done)
  segments that sum to the end-to-end latency exactly.

Request features are pre-drawn once for the whole run, so each request's
inputs — and therefore its functional output under ``materialize=True`` —
are invariant to how the scheduler happens to cut batches: serving with
``max_in_flight=2`` is bit-identical to sequential serving.

Resilient serving (used by the fault sweep) adds three SLO mechanisms:

* **load shedding** — arrivals beyond ``queue_limit`` waiting requests
  are rejected immediately instead of poisoning the whole queue's tail;
* **hedged execution** — a batch still running ``hedge_after_ns`` after
  launch (a straggler suspect) gets an identical hedge batch; the first
  to finish serves the requests, the loser drains in the background,
  occupying real simulated resources;
* **degradation accounting** — with a ``"+resilient"`` EMB backend, each
  batch's :class:`~repro.faults.BatchOutcome` (retries, reroutes,
  zero-filled fraction) is folded into the result.

:meth:`InferenceServer.simulate` returns a :class:`ServingResult` with the
latency distribution and segments, throughput/goodput, the inter-batch
interconnect-idle time, shed/hedge/degradation counters, and an
:meth:`~ServingResult.slo_report` summarising goodput vs. shed vs.
degraded under fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Literal, Optional

import numpy as np

from ..dlrm.data import SyntheticDataGenerator
from ..obs import trace_scope
from ..simgpu.engine import ProcessGenerator
from ..simgpu.profiler import TraceRef
from ..simgpu.stream import StreamPool
from ..simgpu.units import ms
from ..telemetry.metrics import interconnect_idle_ns as _interconnect_idle
from ..telemetry.report import (
    BATCH_FORMED_COUNTER,
    IN_FLIGHT_COUNTER,
    QUEUE_DEPTH_COUNTER,
)
from ..telemetry.timeline import sample_edges
from .pipeline import DLRMInferencePipeline, PipelineTiming
from .retrieval import BackendName, backend_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from ..cache import CacheConfig
    from ..faults import ResilienceSpec
    from .runspec import RunSpec

__all__ = ["SchedulerSpec", "ServingSpec", "ServingResult", "InferenceServer"]

#: batch-formation trigger names (also the BATCH_FORMED_COUNTER suffixes)
FORMATION_REASONS = ("size", "timeout", "exhausted")


@dataclass(frozen=True)
class SchedulerSpec:
    """Continuous-batching scheduler policy.

    ``max_in_flight`` is K, the number of batches that may execute on the
    cluster concurrently (each on its own stream set).  ``policy`` picks
    the batch-formation trigger: ``"size"`` waits for a full
    ``max_batch``, ``"timeout"`` waits ``batch_window_ns`` after the head
    request, ``"hybrid"`` fires on whichever comes first (the classic
    adaptive batcher).  ``queue_limit`` overrides the
    :class:`ServingSpec` admission limit when set.
    """

    max_in_flight: int = 1
    policy: Literal["size", "timeout", "hybrid"] = "hybrid"
    queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if self.policy not in ("size", "timeout", "hybrid"):
            raise ValueError(
                f"unknown policy {self.policy!r} (use size, timeout, or hybrid)"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")


@dataclass(frozen=True)
class ServingSpec:
    """Load, batching, and SLO policy.

    ``cache`` (a :class:`repro.cache.CacheConfig`) equips the pipeline's
    ``"+cache"`` backends; ``resilience`` (a
    :class:`repro.faults.ResilienceSpec`) equips the ``"+resilient"``
    ones.  Each is ignored by the other backends.  ``deadline_ns`` is the
    per-request SLO used for the deadline-hit rate; ``queue_limit`` and
    ``hedge_after_ns`` enable load shedding and hedged re-execution.
    ``scheduler`` configures continuous batching (``None`` = the default
    sequential scheduler: hybrid formation, one batch in flight).
    """

    arrival_qps: float  #: mean request arrival rate (Poisson)
    max_batch: int = 256  #: batcher's size cap
    batch_window_ns: float = 2 * ms  #: max wait after the first queued request
    seed: int = 0
    cache: Optional["CacheConfig"] = None
    deadline_ns: Optional[float] = None  #: per-request SLO deadline
    queue_limit: Optional[int] = None  #: shed arrivals beyond this queue depth
    hedge_after_ns: Optional[float] = None  #: re-execute batches slower than this
    resilience: Optional["ResilienceSpec"] = None
    scheduler: Optional[SchedulerSpec] = None  #: continuous-batching policy

    def __post_init__(self) -> None:
        if self.arrival_qps <= 0:
            raise ValueError("arrival_qps must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.batch_window_ns < 0:
            raise ValueError("batch_window_ns must be non-negative")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive (or None)")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if self.hedge_after_ns is not None and self.hedge_after_ns <= 0:
            raise ValueError("hedge_after_ns must be positive (or None)")
        if self.scheduler is not None and not isinstance(self.scheduler, SchedulerSpec):
            raise TypeError(
                f"ServingSpec.scheduler must be a SchedulerSpec, "
                f"got {type(self.scheduler).__name__}"
            )
        if self.cache is not None:
            from ..cache import CacheConfig  # lazy: avoid import cycle

            if not isinstance(self.cache, CacheConfig):
                raise TypeError(
                    f"ServingSpec.cache must be a repro.cache.CacheConfig, "
                    f"got {type(self.cache).__name__}"
                )
        if self.resilience is not None:
            from ..faults import ResilienceSpec  # lazy: avoid import cycle

            if not isinstance(self.resilience, ResilienceSpec):
                raise TypeError(
                    f"ServingSpec.resilience must be a repro.faults.ResilienceSpec, "
                    f"got {type(self.resilience).__name__}"
                )

    @property
    def mean_interarrival_ns(self) -> float:
        """Expected gap between requests."""
        return 1e9 / self.arrival_qps

    @property
    def scheduler_spec(self) -> SchedulerSpec:
        """The effective scheduler (default: sequential hybrid)."""
        return self.scheduler if self.scheduler is not None else SchedulerSpec()


@dataclass
class ServingResult:
    """Outcome of one serving simulation."""

    latencies_ns: np.ndarray
    batch_sizes: List[int]
    sim_duration_ns: float
    backend: str
    n_shed: int = 0  #: arrivals rejected by load shedding
    n_hedged: int = 0  #: batches that got a hedge re-execution
    deadline_ns: Optional[float] = None  #: the SLO the run was measured against
    degraded_per_request: Optional[np.ndarray] = None  #: zero-filled bag share
    emb_retries: int = 0  #: EMB deadline retries across all batches
    emb_reroutes: int = 0  #: two-hop reroutes across all batches
    emb_rerouted_bytes: float = 0.0
    emb_deadline_misses: int = 0  #: batches that exhausted EMB retries
    form_ns: Optional[np.ndarray] = None  #: arrival → batch ready, per request
    queue_ns: Optional[np.ndarray] = None  #: ready → dispatched, per request
    execute_ns: Optional[np.ndarray] = None  #: dispatched → done, per request
    interconnect_idle_ns: float = 0.0  #: serving-window time with zero traffic
    max_in_flight: int = 1  #: the scheduler's K the run used
    policy: str = "hybrid"  #: the batch-formation policy the run used
    formed_by: Dict[str, int] = field(default_factory=dict)  #: trigger → batches
    request_outputs: Optional[np.ndarray] = None  #: (served, F, d) when materialized
    request_batch: Optional[np.ndarray] = None  #: per-served-request batch seq (traced runs)

    @property
    def n_requests(self) -> int:
        """Requests served."""
        return int(self.latencies_ns.size)

    @property
    def n_batches(self) -> int:
        """Batches dispatched."""
        return len(self.batch_sizes)

    @property
    def n_offered(self) -> int:
        """Requests offered (served + shed)."""
        return self.n_requests + self.n_shed

    @property
    def shed_fraction(self) -> float:
        """Share of offered requests rejected at admission."""
        return self.n_shed / self.n_offered if self.n_offered else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Mean zero-filled bag share across served requests."""
        if self.degraded_per_request is None or self.degraded_per_request.size == 0:
            return 0.0
        return float(np.mean(self.degraded_per_request))

    @property
    def deadline_hit_rate(self) -> float:
        """Share of served requests finishing within ``deadline_ns``.

        1.0 when no deadline was configured (every request "hits").
        """
        if self.n_requests == 0:
            return 0.0
        if self.deadline_ns is None:
            return 1.0
        return float(np.mean(self.latencies_ns <= self.deadline_ns))

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds.

        ``q`` must lie in [0, 100].  A single-sample distribution returns
        that sample for every ``q`` (no interpolation artefacts); an empty
        one (all requests shed) raises instead of returning NaN.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        if self.n_requests == 0:
            raise ValueError(
                "no requests were served (all shed?); latency percentiles undefined"
            )
        if self.n_requests == 1:
            return float(self.latencies_ns[0]) / ms
        return float(np.percentile(self.latencies_ns, q)) / ms

    @property
    def p50_ms(self) -> float:
        """Median latency."""
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        """Tail latency."""
        return self.percentile_ms(99)

    @property
    def mean_batch_size(self) -> float:
        """Average formed batch size (0.0 on an all-shed run).

        Robust to ``batch_sizes`` arriving as any sequence type (a bare
        ``if self.batch_sizes`` is ambiguous for numpy arrays and one
        guard away from ``np.mean([])``'s NaN).
        """
        sizes = np.asarray(self.batch_sizes, dtype=np.float64)
        return float(sizes.mean()) if sizes.size else 0.0

    def _segment_mean(self, values: Optional[np.ndarray]) -> float:
        return float(np.mean(values)) if values is not None and values.size else 0.0

    @property
    def mean_form_ns(self) -> float:
        """Mean batch-formation wait across served requests."""
        return self._segment_mean(self.form_ns)

    @property
    def mean_queue_ns(self) -> float:
        """Mean wait for a free in-flight slot across served requests."""
        return self._segment_mean(self.queue_ns)

    @property
    def mean_execute_ns(self) -> float:
        """Mean pipeline execution time across served requests."""
        return self._segment_mean(self.execute_ns)

    @property
    def throughput_qps(self) -> float:
        """Served requests per (simulated) second."""
        if self.sim_duration_ns <= 0:
            return 0.0
        if self.n_requests == 0:
            raise ValueError(
                "no requests were served (all shed?); throughput undefined"
            )
        return self.n_requests / (self.sim_duration_ns / 1e9)

    @property
    def goodput_qps(self) -> float:
        """Fully-served requests meeting the deadline, per second.

        A request counts toward goodput when it was admitted, finished
        within the deadline (if any), and had no zero-filled bags.
        """
        if self.sim_duration_ns <= 0 or self.n_requests == 0:
            return 0.0
        good = np.ones(self.n_requests, dtype=bool)
        if self.deadline_ns is not None:
            good &= self.latencies_ns <= self.deadline_ns
        if self.degraded_per_request is not None and self.degraded_per_request.size:
            good &= self.degraded_per_request == 0.0
        return float(np.count_nonzero(good)) / (self.sim_duration_ns / 1e9)

    def summary(self) -> str:
        """One-line result."""
        if self.n_requests == 0:
            return f"{self.backend}: 0 reqs served ({self.n_shed} shed)"
        return (
            f"{self.backend}: {self.n_requests} reqs, p50 {self.p50_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms, mean batch {self.mean_batch_size:.0f}, "
            f"{self.throughput_qps:,.0f} qps (K={self.max_in_flight})"
        )

    def slo_report(self) -> str:
        """Multi-line SLO summary: goodput vs. shed vs. degraded."""
        lines = [
            f"backend {self.backend}: offered {self.n_offered}, "
            f"served {self.n_requests}, shed {self.n_shed} "
            f"({100 * self.shed_fraction:.1f}%), hedged {self.n_hedged}"
        ]
        if self.n_requests:
            dl = (
                f"deadline {self.deadline_ns / ms:.2f} ms, "
                f"hit-rate {100 * self.deadline_hit_rate:.1f}%"
                if self.deadline_ns is not None
                else "no deadline"
            )
            lines.append(
                f"latency p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms ({dl})"
            )
            lines.append(
                f"throughput {self.throughput_qps:,.0f} qps, "
                f"goodput {self.goodput_qps:,.0f} qps"
            )
            lines.append(
                f"segments form {self.mean_form_ns / ms:.3f} / queue "
                f"{self.mean_queue_ns / ms:.3f} / execute "
                f"{self.mean_execute_ns / ms:.3f} ms "
                f"(K={self.max_in_flight}, policy {self.policy})"
            )
        else:
            lines.append("no requests served")
        lines.append(
            f"degraded {100 * self.degraded_fraction:.2f}% of bags; emb retries "
            f"{self.emb_retries}, reroutes {self.emb_reroutes} "
            f"({self.emb_rerouted_bytes / 1e6:.2f} MB), "
            f"deadline misses {self.emb_deadline_misses}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Plain-dict view for the telemetry :class:`~repro.telemetry.RunReport`."""
        served = self.n_requests > 0
        return {
            "backend": self.backend,
            "n_requests": self.n_requests,
            "n_offered": self.n_offered,
            "n_shed": self.n_shed,
            "n_hedged": self.n_hedged,
            "n_batches": self.n_batches,
            "shed_fraction": self.shed_fraction,
            "sim_duration_ns": float(self.sim_duration_ns),
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.p50_ms if served else None,
            "p99_ms": self.p99_ms if served else None,
            "throughput_qps": self.throughput_qps if served else 0.0,
            "goodput_qps": self.goodput_qps,
            "deadline_ns": self.deadline_ns,
            "deadline_hit_rate": self.deadline_hit_rate,
            "degraded_fraction": self.degraded_fraction,
            "emb_retries": self.emb_retries,
            "emb_reroutes": self.emb_reroutes,
            "emb_rerouted_bytes": float(self.emb_rerouted_bytes),
            "emb_deadline_misses": self.emb_deadline_misses,
            "max_in_flight": self.max_in_flight,
            "policy": self.policy,
            "formed_by": dict(self.formed_by),
            "mean_form_ns": self.mean_form_ns,
            "mean_queue_ns": self.mean_queue_ns,
            "mean_execute_ns": self.mean_execute_ns,
            "interconnect_idle_ns": float(self.interconnect_idle_ns),
        }


class InferenceServer:
    """One model replica serving a Poisson request stream."""

    def __init__(self, pipeline: DLRMInferencePipeline, spec: ServingSpec):
        self.pipeline = pipeline
        self.spec = spec
        if spec.cache is not None:
            pipeline.set_cache_config(spec.cache)
        if spec.resilience is not None:
            pipeline.set_resilience(spec.resilience)
        self._sharded = None  # lazily materialised weights (functional path)

    @classmethod
    def from_spec(cls, spec: "RunSpec", *, pipeline: Optional[DLRMInferencePipeline] = None):
        """Build a server from a :class:`~repro.core.runspec.RunSpec`.

        The spec must carry a ``serving`` section; its ``scheduler``
        section (when present) overrides the serving spec's.
        """
        if pipeline is None:
            pipeline = DLRMInferencePipeline.from_spec(spec)
        return cls(pipeline, spec.serving_spec())

    # -- functional path ---------------------------------------------------------

    def _materialized_tables(self):
        """Real embedding weights, built once, seeded by the workload seed.

        Two servers over the same workload materialise identical weights,
        so cross-server output comparisons (sequential vs. continuous
        batching) are meaningful bit-for-bit.
        """
        if self._sharded is None:
            from ..dlrm.embedding import EmbeddingBagCollection
            from .functional import ShardedEmbeddingTables

            cfg = self.pipeline.config.workload
            ebc = EmbeddingBagCollection.from_configs(
                cfg.table_configs(), rng=np.random.default_rng(cfg.seed)
            )
            self._sharded = ShardedEmbeddingTables.from_collection(
                ebc, self.pipeline.plan
            )
        return self._sharded

    # -- simulation --------------------------------------------------------------

    def simulate(
        self,
        n_requests: int,
        backend: Optional[BackendName] = None,
        *,
        materialize: bool = False,
    ) -> ServingResult:
        """Serve ``n_requests`` to completion; returns the latency stats.

        With ``materialize=True`` the server also runs the functional EMB
        forward per batch and returns per-request output vectors in
        ``result.request_outputs`` — bit-identical regardless of the
        scheduler's ``max_in_flight`` because request features are
        pre-drawn once and pooling is per-sample.
        """
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        pipeline = self.pipeline
        cluster = pipeline.cluster
        engine = cluster.engine
        profiler = cluster.profiler
        spec = self.spec
        sched = spec.scheduler_spec
        queue_limit = (
            sched.queue_limit if sched.queue_limit is not None else spec.queue_limit
        )
        rng = np.random.default_rng(spec.seed)
        workload = pipeline.config.workload
        gen = SyntheticDataGenerator(workload)
        be = backend or pipeline.backend
        needs_indices = backend_spec(be).requires_indices
        resilient = be.endswith("+resilient")
        obs = getattr(pipeline, "obs_config", None)
        tracing = obs is not None and obs.enabled

        # Pre-draw every request's features once: request r's inputs (and
        # functional outputs) are fixed regardless of how the scheduler
        # cuts batches, which is what makes continuous batching
        # bit-identical to sequential serving.
        needs_sparse = (
            needs_indices
            or materialize
            or (resilient and pipeline.resilience_config is not None)
        )
        if needs_sparse:
            pool = gen.sparse_batch(batch_size=n_requests)
            pool_lengths = None
        else:
            pool = None
            pool_lengths = gen.lengths_batch(batch_size=n_requests)

        functional = None
        if materialize:
            from .functional import baseline_functional_forward, pgas_functional_forward

            sharded = self._materialized_tables()
            base = be.split("+", 1)[0]
            if base == "baseline":
                def functional(b):
                    outputs, _blocks = baseline_functional_forward(sharded, b)
                    return outputs
            else:
                def functional(b):
                    return pgas_functional_forward(sharded, b)

        # Per-request timestamps (NaN = not applicable / not served).
        arrival_t = np.full(n_requests, np.nan)
        ready_t = np.full(n_requests, np.nan)
        dispatch_t = np.full(n_requests, np.nan)
        done_t = np.full(n_requests, np.nan)
        batch_of = np.full(n_requests, -1, dtype=np.int64)
        degraded_t = np.zeros(n_requests)
        outputs_t: List[Optional[np.ndarray]] = [None] * n_requests

        queue: List[int] = []  # admitted request ids awaiting dispatch
        arrived = 0
        n_shed = 0
        n_hedged = 0
        n_done = 0
        in_flight = 0
        batch_sizes: List[int] = []
        formed_by: Dict[str, int] = {reason: 0 for reason in FORMATION_REASONS}
        slots = StreamPool(sched.max_in_flight)
        wake = engine.notifier("scheduler")
        t_start = engine.now
        if resilient:
            # Force-build the engine now so the outcome ledger exists.
            outcome_start = len(pipeline._resilient_retrieval(be).outcomes)

        def arrivals() -> ProcessGenerator:
            nonlocal arrived, n_shed
            for rid in range(n_requests):
                gap = rng.exponential(spec.mean_interarrival_ns)
                yield engine.timeout(gap)
                arrived += 1
                if queue_limit is not None and len(queue) >= queue_limit:
                    # Admission control: reject instead of growing the tail.
                    n_shed += 1
                else:
                    arrival_t[rid] = engine.now
                    queue.append(rid)
                    profiler.add_count(
                        QUEUE_DEPTH_COUNTER, engine.now, 1.0, unit="requests"
                    )
                # A shed arrival still kicks the scheduler so its loop
                # condition (served + shed == offered) is re-checked.
                wake.notify()

        def run_batch(rows: List[int], lease, batch_seq: int) -> ProcessGenerator:
            """Execute one dispatched batch on its leased stream set."""
            nonlocal n_hedged, n_done, in_flight
            t_dispatch = engine.now
            # One trace ref per dispatched batch; the hedge re-execution is
            # the same logical batch so it shares the ref.
            ref = TraceRef(obs.trace_id, batch_seq) if tracing else None
            rows_np = np.asarray(rows, dtype=np.int64)
            if pool is not None:
                sub_batch = pool.take(rows_np)
                sub_lengths = None
            else:
                sub_batch = None
                sub_lengths = {
                    name: arr[rows_np] for name, arr in pool_lengths.items()
                }

            def launch():
                timing = PipelineTiming()
                if sub_batch is not None:
                    proc_gen = pipeline.batch_process(
                        None, timing, be, batch=sub_batch,
                        stream_suffix=lease.suffix, trace=ref,
                    )
                else:
                    proc_gen = pipeline.batch_process(
                        sub_lengths, timing, be, stream_suffix=lease.suffix,
                        trace=ref,
                    )
                return engine.process(proc_gen, name="serve_batch")

            proc = launch()
            if spec.hedge_after_ns is None:
                yield proc
            else:
                yield engine.any_of([proc, engine.timeout(spec.hedge_after_ns)])
                if not proc.triggered:
                    # Straggler suspect: race an identical hedge batch.
                    # The loser keeps draining in the background,
                    # occupying its streams and links.
                    n_hedged += 1
                    hedge = launch()
                    yield engine.any_of([proc, hedge])
            done = engine.now
            done_t[rows_np] = done
            if ref is not None:
                # Envelope span: the dispatched batch's full residency, the
                # anchor Perfetto flow arrows and per-batch windows hang off.
                batch_of[rows_np] = batch_seq
                with trace_scope(profiler, ref):
                    profiler.record_span(
                        f"serve.batch{batch_seq}", "serve", -1, t_dispatch, done
                    )
            if resilient:
                outcome = pipeline.pop_resilient_outcome(be)
                frac = outcome.degraded_fraction if outcome is not None else 0.0
                degraded_t[rows_np] = frac
            if functional is not None:
                # Per-device (B_g, F, d) outputs concatenate back to the
                # batch's sample order, i.e. the dispatched row order.
                flat = np.concatenate(functional(sub_batch), axis=0)
                for i, rid in enumerate(rows):
                    outputs_t[rid] = flat[i]
            n_done += len(rows)
            in_flight -= 1
            profiler.add_count(IN_FLIGHT_COUNTER, done, -1.0, unit="batches")
            lease.release()
            wake.notify()

        def scheduler() -> ProcessGenerator:
            nonlocal in_flight
            n_launched = 0
            while n_done + n_shed < n_requests:
                if not queue:
                    yield wake.wait()
                    continue
                # Batch former: wait until the policy declares the head
                # batch ready.
                reason = None
                while reason is None:
                    if sched.policy != "timeout" and len(queue) >= spec.max_batch:
                        reason = "size"
                    elif arrived >= n_requests:
                        reason = "exhausted"
                    elif (
                        sched.policy != "size"
                        and engine.now
                        >= arrival_t[queue[0]] + spec.batch_window_ns
                    ):
                        reason = "timeout"
                    else:
                        ev = wake.wait()
                        if sched.policy != "size":
                            remaining = (
                                arrival_t[queue[0]]
                                + spec.batch_window_ns
                                - engine.now
                            )
                            yield engine.any_of([ev, engine.timeout(remaining)])
                        else:
                            yield ev
                t_ready = engine.now
                # Dispatcher: wait for a free in-flight slot, then seal.
                while in_flight >= sched.max_in_flight:
                    yield wake.wait()
                # Seal at dispatch: absorb everything waiting now (late
                # arrivals ride along, with a zero form segment).
                k = min(len(queue), spec.max_batch)
                rows = queue[:k]
                del queue[:k]
                rows_np = np.asarray(rows, dtype=np.int64)
                now = engine.now
                ready_t[rows_np] = np.maximum(t_ready, arrival_t[rows_np])
                dispatch_t[rows_np] = now
                profiler.add_count(
                    QUEUE_DEPTH_COUNTER, now, -float(k), unit="requests"
                )
                profiler.add_count(IN_FLIGHT_COUNTER, now, 1.0, unit="batches")
                profiler.add_count(
                    f"{BATCH_FORMED_COUNTER}.{reason}", now, 1.0, unit="batches"
                )
                formed_by[reason] += 1
                batch_sizes.append(k)
                in_flight += 1
                lease = slots.acquire()
                engine.process(run_batch(rows, lease, n_launched), name=f"batch{n_launched}")
                n_launched += 1

        engine.process(arrivals(), name="arrivals")
        sched_proc = engine.process(scheduler(), name="scheduler")
        engine.run_until_event(sched_proc)
        t_end = engine.now

        # Compact per-request records in request-id order (stable across
        # out-of-order completion under K > 1).
        served = np.nonzero(~np.isnan(done_t))[0]
        latencies = (done_t - arrival_t)[served]
        form = (ready_t - arrival_t)[served]
        queue_seg = (dispatch_t - ready_t)[served]
        execute = (done_t - dispatch_t)[served]

        idle = 0.0
        if t_end > t_start:
            edges = sample_edges(t_start, t_end, 240)
            idle = _interconnect_idle(profiler, edges)

        request_outputs = None
        if materialize and served.size:
            request_outputs = np.stack([outputs_t[rid] for rid in served])

        result = ServingResult(
            latencies_ns=latencies,
            batch_sizes=batch_sizes,
            sim_duration_ns=t_end - t_start,
            backend=be,
            n_shed=n_shed,
            n_hedged=n_hedged,
            deadline_ns=spec.deadline_ns,
            degraded_per_request=degraded_t[served] if resilient else None,
            form_ns=form,
            queue_ns=queue_seg,
            execute_ns=execute,
            interconnect_idle_ns=idle,
            max_in_flight=sched.max_in_flight,
            policy=sched.policy,
            formed_by=formed_by,
            request_outputs=request_outputs,
            request_batch=batch_of[served] if tracing else None,
        )
        if resilient:
            # Ledger totals include hedge losers that finished late.
            outcomes = pipeline._resilient_retrieval(be).outcomes[outcome_start:]
            result.emb_retries = sum(o.retries for o in outcomes)
            result.emb_reroutes = sum(o.rerouted_pairs for o in outcomes)
            result.emb_rerouted_bytes = sum(o.rerouted_bytes for o in outcomes)
            result.emb_deadline_misses = sum(o.deadline_missed for o in outcomes)
        return result
