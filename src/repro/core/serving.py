"""Inference-serving simulation: request queues, batching, tail latency, SLOs.

The paper motivates its optimisation with inference economics (DLRM is
"over 70% of inference time" at Meta, citing DeepRecSys), where what
matters is not batch throughput but *latency under load*: requests arrive
continuously, a batcher groups them, and the EMB layer's exposed
communication sits directly on the tail.

:class:`InferenceServer` runs that loop on the simulator:

* requests arrive as a Poisson process at ``arrival_qps``;
* a batcher collects up to ``max_batch`` requests, waiting at most
  ``batch_window_ns`` after the first queued request;
* each batch runs the full timed DLRM pipeline
  (:class:`~repro.core.pipeline.DLRMInferencePipeline`) with the chosen
  EMB backend, serially (one model replica);
* per-request latency = completion − arrival.

Resilient serving (used by the fault sweep) adds three SLO mechanisms:

* **load shedding** — arrivals beyond ``queue_limit`` waiting requests
  are rejected immediately instead of poisoning the whole queue's tail;
* **hedged execution** — a batch still running ``hedge_after_ns`` after
  launch (a straggler suspect) gets an identical hedge batch; the first
  to finish serves the requests, the loser drains in the background,
  occupying real simulated resources;
* **degradation accounting** — with a ``"+resilient"`` EMB backend, each
  batch's :class:`~repro.faults.BatchOutcome` (retries, reroutes,
  zero-filled fraction) is folded into the result.

:meth:`InferenceServer.simulate` returns a :class:`ServingResult` with the
latency distribution, throughput, shed/hedge/degradation counters, and an
:meth:`~ServingResult.slo_report` summarising goodput vs. shed vs.
degraded under fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..dlrm.data import SyntheticDataGenerator
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.units import ms
from ..telemetry.report import QUEUE_DEPTH_COUNTER
from .pipeline import DLRMInferencePipeline, PipelineTiming
from .retrieval import BackendName, backend_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from ..cache import CacheConfig
    from ..faults import ResilienceSpec

__all__ = ["ServingSpec", "ServingResult", "InferenceServer"]


@dataclass(frozen=True)
class ServingSpec:
    """Load, batching, and SLO policy.

    ``cache`` (a :class:`repro.cache.CacheConfig`) equips the pipeline's
    ``"+cache"`` backends; ``resilience`` (a
    :class:`repro.faults.ResilienceSpec`) equips the ``"+resilient"``
    ones.  Each is ignored by the other backends.  ``deadline_ns`` is the
    per-request SLO used for the deadline-hit rate; ``queue_limit`` and
    ``hedge_after_ns`` enable load shedding and hedged re-execution.
    """

    arrival_qps: float  #: mean request arrival rate (Poisson)
    max_batch: int = 256  #: batcher's size cap
    batch_window_ns: float = 2 * ms  #: max wait after the first queued request
    seed: int = 0
    cache: Optional["CacheConfig"] = None
    deadline_ns: Optional[float] = None  #: per-request SLO deadline
    queue_limit: Optional[int] = None  #: shed arrivals beyond this queue depth
    hedge_after_ns: Optional[float] = None  #: re-execute batches slower than this
    resilience: Optional["ResilienceSpec"] = None

    def __post_init__(self) -> None:
        if self.arrival_qps <= 0:
            raise ValueError("arrival_qps must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.batch_window_ns < 0:
            raise ValueError("batch_window_ns must be non-negative")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise ValueError("deadline_ns must be positive (or None)")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None)")
        if self.hedge_after_ns is not None and self.hedge_after_ns <= 0:
            raise ValueError("hedge_after_ns must be positive (or None)")
        if self.cache is not None:
            from ..cache import CacheConfig  # lazy: avoid import cycle

            if not isinstance(self.cache, CacheConfig):
                raise TypeError(
                    f"ServingSpec.cache must be a repro.cache.CacheConfig, "
                    f"got {type(self.cache).__name__}"
                )
        if self.resilience is not None:
            from ..faults import ResilienceSpec  # lazy: avoid import cycle

            if not isinstance(self.resilience, ResilienceSpec):
                raise TypeError(
                    f"ServingSpec.resilience must be a repro.faults.ResilienceSpec, "
                    f"got {type(self.resilience).__name__}"
                )

    @property
    def mean_interarrival_ns(self) -> float:
        """Expected gap between requests."""
        return 1e9 / self.arrival_qps


@dataclass
class ServingResult:
    """Outcome of one serving simulation."""

    latencies_ns: np.ndarray
    batch_sizes: List[int]
    sim_duration_ns: float
    backend: str
    n_shed: int = 0  #: arrivals rejected by load shedding
    n_hedged: int = 0  #: batches that got a hedge re-execution
    deadline_ns: Optional[float] = None  #: the SLO the run was measured against
    degraded_per_request: Optional[np.ndarray] = None  #: zero-filled bag share
    emb_retries: int = 0  #: EMB deadline retries across all batches
    emb_reroutes: int = 0  #: two-hop reroutes across all batches
    emb_rerouted_bytes: float = 0.0
    emb_deadline_misses: int = 0  #: batches that exhausted EMB retries

    @property
    def n_requests(self) -> int:
        """Requests served."""
        return int(self.latencies_ns.size)

    @property
    def n_offered(self) -> int:
        """Requests offered (served + shed)."""
        return self.n_requests + self.n_shed

    @property
    def shed_fraction(self) -> float:
        """Share of offered requests rejected at admission."""
        return self.n_shed / self.n_offered if self.n_offered else 0.0

    @property
    def degraded_fraction(self) -> float:
        """Mean zero-filled bag share across served requests."""
        if self.degraded_per_request is None or self.degraded_per_request.size == 0:
            return 0.0
        return float(np.mean(self.degraded_per_request))

    @property
    def deadline_hit_rate(self) -> float:
        """Share of served requests finishing within ``deadline_ns``.

        1.0 when no deadline was configured (every request "hits").
        """
        if self.n_requests == 0:
            return 0.0
        if self.deadline_ns is None:
            return 1.0
        return float(np.mean(self.latencies_ns <= self.deadline_ns))

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds."""
        if self.n_requests == 0:
            raise ValueError(
                "no requests were served (all shed?); latency percentiles undefined"
            )
        return float(np.percentile(self.latencies_ns, q)) / ms

    @property
    def p50_ms(self) -> float:
        """Median latency."""
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        """Tail latency."""
        return self.percentile_ms(99)

    @property
    def mean_batch_size(self) -> float:
        """Average formed batch size."""
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def throughput_qps(self) -> float:
        """Served requests per (simulated) second."""
        if self.sim_duration_ns <= 0:
            return 0.0
        if self.n_requests == 0:
            raise ValueError(
                "no requests were served (all shed?); throughput undefined"
            )
        return self.n_requests / (self.sim_duration_ns / 1e9)

    @property
    def goodput_qps(self) -> float:
        """Fully-served requests meeting the deadline, per second.

        A request counts toward goodput when it was admitted, finished
        within the deadline (if any), and had no zero-filled bags.
        """
        if self.sim_duration_ns <= 0 or self.n_requests == 0:
            return 0.0
        good = np.ones(self.n_requests, dtype=bool)
        if self.deadline_ns is not None:
            good &= self.latencies_ns <= self.deadline_ns
        if self.degraded_per_request is not None and self.degraded_per_request.size:
            good &= self.degraded_per_request == 0.0
        return float(np.count_nonzero(good)) / (self.sim_duration_ns / 1e9)

    def summary(self) -> str:
        """One-line result."""
        if self.n_requests == 0:
            return f"{self.backend}: 0 reqs served ({self.n_shed} shed)"
        return (
            f"{self.backend}: {self.n_requests} reqs, p50 {self.p50_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms, mean batch {self.mean_batch_size:.0f}, "
            f"{self.throughput_qps:,.0f} qps"
        )

    def slo_report(self) -> str:
        """Multi-line SLO summary: goodput vs. shed vs. degraded."""
        lines = [
            f"backend {self.backend}: offered {self.n_offered}, "
            f"served {self.n_requests}, shed {self.n_shed} "
            f"({100 * self.shed_fraction:.1f}%), hedged {self.n_hedged}"
        ]
        if self.n_requests:
            dl = (
                f"deadline {self.deadline_ns / ms:.2f} ms, "
                f"hit-rate {100 * self.deadline_hit_rate:.1f}%"
                if self.deadline_ns is not None
                else "no deadline"
            )
            lines.append(
                f"latency p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms ({dl})"
            )
            lines.append(
                f"throughput {self.throughput_qps:,.0f} qps, "
                f"goodput {self.goodput_qps:,.0f} qps"
            )
        else:
            lines.append("no requests served")
        lines.append(
            f"degraded {100 * self.degraded_fraction:.2f}% of bags; emb retries "
            f"{self.emb_retries}, reroutes {self.emb_reroutes} "
            f"({self.emb_rerouted_bytes / 1e6:.2f} MB), "
            f"deadline misses {self.emb_deadline_misses}"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Plain-dict view for the telemetry :class:`~repro.telemetry.RunReport`."""
        served = self.n_requests > 0
        return {
            "backend": self.backend,
            "n_requests": self.n_requests,
            "n_offered": self.n_offered,
            "n_shed": self.n_shed,
            "n_hedged": self.n_hedged,
            "shed_fraction": self.shed_fraction,
            "sim_duration_ns": float(self.sim_duration_ns),
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.p50_ms if served else None,
            "p99_ms": self.p99_ms if served else None,
            "throughput_qps": self.throughput_qps if served else 0.0,
            "goodput_qps": self.goodput_qps,
            "deadline_ns": self.deadline_ns,
            "deadline_hit_rate": self.deadline_hit_rate,
            "degraded_fraction": self.degraded_fraction,
            "emb_retries": self.emb_retries,
            "emb_reroutes": self.emb_reroutes,
            "emb_rerouted_bytes": float(self.emb_rerouted_bytes),
            "emb_deadline_misses": self.emb_deadline_misses,
        }


class InferenceServer:
    """One model replica serving a Poisson request stream."""

    def __init__(self, pipeline: DLRMInferencePipeline, spec: ServingSpec):
        self.pipeline = pipeline
        self.spec = spec
        if spec.cache is not None:
            pipeline.set_cache_config(spec.cache)
        if spec.resilience is not None:
            pipeline.set_resilience(spec.resilience)

    def simulate(
        self, n_requests: int, backend: Optional[BackendName] = None
    ) -> ServingResult:
        """Serve ``n_requests`` to completion; returns the latency stats."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        pipeline = self.pipeline
        cluster = pipeline.cluster
        engine = cluster.engine
        profiler = cluster.profiler
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        workload = pipeline.config.workload
        gen = SyntheticDataGenerator(workload)
        be = backend or pipeline.backend
        needs_indices = backend_spec(be).requires_indices
        resilient = be.endswith("+resilient")

        queue: List[float] = []  # arrival times of waiting requests
        arrived = 0
        n_shed = 0
        n_hedged = 0
        new_arrival: List[Event] = [engine.event("arrival")]
        latencies: List[float] = []
        degraded: List[float] = []
        batch_sizes: List[int] = []
        t_start = engine.now
        if resilient:
            # Force-build the engine now so the outcome ledger exists.
            outcome_start = len(pipeline._resilient_retrieval(be).outcomes)

        def arrivals() -> ProcessGenerator:
            nonlocal arrived, n_shed
            for _ in range(n_requests):
                gap = rng.exponential(spec.mean_interarrival_ns)
                yield engine.timeout(gap)
                arrived += 1
                if spec.queue_limit is not None and len(queue) >= spec.queue_limit:
                    # Admission control: reject instead of growing the tail.
                    n_shed += 1
                else:
                    queue.append(engine.now)
                    profiler.add_count(
                        QUEUE_DEPTH_COUNTER, engine.now, 1.0, unit="requests"
                    )
                # A shed arrival still pings the server so its loop
                # condition (served + shed == offered) is re-checked.
                ev = new_arrival[0]
                if not ev.triggered:
                    ev.succeed()

        def launch_batch(k: int):
            """One timed pipeline run over a freshly drawn batch of size k."""
            timing = PipelineTiming()
            if needs_indices or (resilient and pipeline.resilience_config is not None):
                # Index-dependent backends cost on the values; the resilient
                # fallback cache also wants them when available.
                sparse = gen.sparse_batch(batch_size=k)
                proc = pipeline.batch_process(None, timing, be, batch=sparse)
            else:
                lengths = gen.lengths_batch(batch_size=k)
                proc = pipeline.batch_process(lengths, timing, be)
            return engine.process(proc, name="serve_batch")

        def server() -> ProcessGenerator:
            nonlocal n_hedged
            while len(latencies) + n_shed < n_requests:
                if not queue:
                    ev = engine.event("arrival")
                    new_arrival[0] = ev
                    yield ev
                    continue
                # Batcher: wait for the window (or until the cap is full).
                deadline = queue[0] + spec.batch_window_ns
                while (
                    len(queue) < spec.max_batch
                    and arrived < n_requests
                    and engine.now < deadline
                ):
                    ev = engine.event("arrival")
                    new_arrival[0] = ev
                    remaining = deadline - engine.now
                    yield engine.any_of([ev, engine.timeout(remaining)])
                k = min(len(queue), spec.max_batch)
                batch_arrivals = queue[:k]
                del queue[:k]
                profiler.add_count(
                    QUEUE_DEPTH_COUNTER, engine.now, -float(k), unit="requests"
                )
                batch_sizes.append(k)
                proc = launch_batch(k)
                if spec.hedge_after_ns is None:
                    yield proc
                else:
                    yield engine.any_of([proc, engine.timeout(spec.hedge_after_ns)])
                    if not proc.triggered:
                        # Straggler suspect: race an identical hedge batch.
                        # The loser keeps draining in the background,
                        # occupying its streams and links.
                        n_hedged += 1
                        hedge = launch_batch(k)
                        yield engine.any_of([proc, hedge])
                done = engine.now
                latencies.extend(done - a for a in batch_arrivals)
                if resilient:
                    outcome = pipeline.pop_resilient_outcome(be)
                    frac = outcome.degraded_fraction if outcome is not None else 0.0
                    degraded.extend([frac] * k)

        arr_proc = engine.process(arrivals(), name="arrivals")
        srv_proc = engine.process(server(), name="server")
        engine.run_until_event(srv_proc)

        result = ServingResult(
            latencies_ns=np.array(latencies),
            batch_sizes=batch_sizes,
            sim_duration_ns=engine.now - t_start,
            backend=be,
            n_shed=n_shed,
            n_hedged=n_hedged,
            deadline_ns=spec.deadline_ns,
            degraded_per_request=np.array(degraded) if resilient else None,
        )
        if resilient:
            # Ledger totals include hedge losers that finished late.
            outcomes = pipeline._resilient_retrieval(be).outcomes[outcome_start:]
            result.emb_retries = sum(o.retries for o in outcomes)
            result.emb_reroutes = sum(o.rerouted_pairs for o in outcomes)
            result.emb_rerouted_bytes = sum(o.rerouted_bytes for o in outcomes)
            result.emb_deadline_misses = sum(o.deadline_missed for o in outcomes)
        return result
