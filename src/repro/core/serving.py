"""Inference-serving simulation: request queues, batching, tail latency.

The paper motivates its optimisation with inference economics (DLRM is
"over 70% of inference time" at Meta, citing DeepRecSys), where what
matters is not batch throughput but *latency under load*: requests arrive
continuously, a batcher groups them, and the EMB layer's exposed
communication sits directly on the tail.

:class:`InferenceServer` runs that loop on the simulator:

* requests arrive as a Poisson process at ``arrival_qps``;
* a batcher collects up to ``max_batch`` requests, waiting at most
  ``batch_window_ns`` after the first queued request;
* each batch runs the full timed DLRM pipeline
  (:class:`~repro.core.pipeline.DLRMInferencePipeline`) with the chosen
  EMB backend, serially (one model replica);
* per-request latency = completion − arrival.

:meth:`InferenceServer.simulate` returns a :class:`ServingResult` with the
latency distribution, throughput, and queue statistics — the backend with
the shorter EMB stage sustains visibly higher load before the queue (and
the tail) blows up, which is what the serving example/bench demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..dlrm.data import SyntheticDataGenerator
from ..simgpu.engine import Event, ProcessGenerator
from ..simgpu.units import ms, us
from .pipeline import DLRMInferencePipeline, PipelineTiming
from .retrieval import BackendName, backend_spec

__all__ = ["ServingSpec", "ServingResult", "InferenceServer"]


@dataclass(frozen=True)
class ServingSpec:
    """Load and batching policy.

    ``cache`` (a :class:`repro.cache.CacheConfig`) equips the pipeline's
    ``"+cache"`` backends; it is ignored by the uncached ones.
    """

    arrival_qps: float  #: mean request arrival rate (Poisson)
    max_batch: int = 256  #: batcher's size cap
    batch_window_ns: float = 2 * ms  #: max wait after the first queued request
    seed: int = 0
    cache: Optional[object] = None  #: repro.cache.CacheConfig for cached backends

    def __post_init__(self) -> None:
        if self.arrival_qps <= 0:
            raise ValueError("arrival_qps must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.batch_window_ns < 0:
            raise ValueError("batch_window_ns must be non-negative")

    @property
    def mean_interarrival_ns(self) -> float:
        """Expected gap between requests."""
        return 1e9 / self.arrival_qps


@dataclass
class ServingResult:
    """Outcome of one serving simulation."""

    latencies_ns: np.ndarray
    batch_sizes: List[int]
    sim_duration_ns: float
    backend: str

    @property
    def n_requests(self) -> int:
        """Requests served."""
        return int(self.latencies_ns.size)

    def percentile_ms(self, q: float) -> float:
        """Latency percentile in milliseconds."""
        return float(np.percentile(self.latencies_ns, q)) / ms

    @property
    def p50_ms(self) -> float:
        """Median latency."""
        return self.percentile_ms(50)

    @property
    def p99_ms(self) -> float:
        """Tail latency."""
        return self.percentile_ms(99)

    @property
    def mean_batch_size(self) -> float:
        """Average formed batch size."""
        return float(np.mean(self.batch_sizes)) if self.batch_sizes else 0.0

    @property
    def throughput_qps(self) -> float:
        """Served requests per (simulated) second."""
        if self.sim_duration_ns <= 0:
            return 0.0
        return self.n_requests / (self.sim_duration_ns / 1e9)

    def summary(self) -> str:
        """One-line result."""
        return (
            f"{self.backend}: {self.n_requests} reqs, p50 {self.p50_ms:.2f} ms, "
            f"p99 {self.p99_ms:.2f} ms, mean batch {self.mean_batch_size:.0f}, "
            f"{self.throughput_qps:,.0f} qps"
        )


class InferenceServer:
    """One model replica serving a Poisson request stream."""

    def __init__(self, pipeline: DLRMInferencePipeline, spec: ServingSpec):
        self.pipeline = pipeline
        self.spec = spec
        if spec.cache is not None:
            pipeline.set_cache_config(spec.cache)

    def simulate(
        self, n_requests: int, backend: Optional[BackendName] = None
    ) -> ServingResult:
        """Serve ``n_requests`` to completion; returns the latency stats."""
        if n_requests <= 0:
            raise ValueError("n_requests must be positive")
        pipeline = self.pipeline
        cluster = pipeline.cluster
        engine = cluster.engine
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        workload = pipeline.config.workload
        gen = SyntheticDataGenerator(workload)
        be = backend or pipeline.backend
        needs_indices = backend_spec(be).requires_indices

        queue: List[float] = []  # arrival times of waiting requests
        arrived = 0
        new_arrival: List[Event] = [engine.event("arrival")]
        latencies: List[float] = []
        batch_sizes: List[int] = []
        t_start = engine.now

        def arrivals() -> ProcessGenerator:
            nonlocal arrived
            for _ in range(n_requests):
                gap = rng.exponential(spec.mean_interarrival_ns)
                yield engine.timeout(gap)
                queue.append(engine.now)
                arrived += 1
                ev = new_arrival[0]
                if not ev.triggered:
                    ev.succeed()

        def server() -> ProcessGenerator:
            while len(latencies) < n_requests:
                if not queue:
                    ev = engine.event("arrival")
                    new_arrival[0] = ev
                    yield ev
                # Batcher: wait for the window (or until the cap is full).
                deadline = queue[0] + spec.batch_window_ns
                while (
                    len(queue) < spec.max_batch
                    and arrived < n_requests
                    and engine.now < deadline
                ):
                    ev = engine.event("arrival")
                    new_arrival[0] = ev
                    remaining = deadline - engine.now
                    yield engine.any_of([ev, engine.timeout(remaining)])
                k = min(len(queue), spec.max_batch)
                batch_arrivals = queue[:k]
                del queue[:k]
                batch_sizes.append(k)
                timing = PipelineTiming()
                if needs_indices:
                    # Cached backends cost on index values, so draw them.
                    sparse = gen.sparse_batch(batch_size=k)
                    proc = pipeline.batch_process(None, timing, be, batch=sparse)
                else:
                    lengths = gen.lengths_batch(batch_size=k)
                    proc = pipeline.batch_process(lengths, timing, be)
                yield engine.process(proc, name="serve_batch")
                done = engine.now
                latencies.extend(done - a for a in batch_arrivals)

        arr_proc = engine.process(arrivals(), name="arrivals")
        srv_proc = engine.process(server(), name="server")
        engine.run_until_event(srv_proc)

        return ServingResult(
            latencies_ns=np.array(latencies),
            batch_sizes=batch_sizes,
            sim_duration_ns=engine.now - t_start,
            backend=backend or pipeline.backend,
        )
