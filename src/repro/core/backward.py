"""EMB-layer backward pass — the paper's §V (future work) extension.

During backpropagation the data flow of the forward pass reverses: each
device holds the upstream gradients for *its mini-batch* of the EMB output
``(B_g, F, d)``, and the gradient of every table row must end up at the
table's owner, summed over every bag occurrence from every device.

**Baseline** (collective) backward, per batch:

1. *pack* kernel — regroup the mini-batch gradients into per-owner send
   buffers (the inverse of the forward's unpack, same inefficient
   rearrangement pass);
2. ``all_to_all_single`` of the gradient chunks (the forward split matrix,
   transposed);
3. *scatter-add* kernel at each owner — read each received ``(b, f)``
   gradient once per bag index and read-modify-write the table row.
   Duplicate rows serialise through the same accumulator, and the whole
   step waits for the full collective (paper: "multiple synchronizations
   to ensure all GPUs have consistent gradient information").

**PGAS** backward, per batch: one fused kernel per device walks its
mini-batch gradients; contributions to remote tables leave immediately as
*remote atomic adds* per wave, local ones scatter-add in place.  No pack,
no collective rounds — completion is a ``quiet`` + rendezvous, exactly the
mechanism the paper proposes ("replacing multiple rounds of collective
calls with atomic PGAS direct-GPU remote writes").

The functional layer (:func:`reference_backward` et al.) really computes
and applies the row gradients so tests can check the two schemes agree
with a single-device oracle (to accumulation order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..comm.collective import CollectiveContext, CollectiveSpec
from ..comm.pgas import PGASContext, PGASSpec
from ..dlrm.batch import JaggedField, SparseBatch
from ..dlrm.embedding import EmbeddingTable
from ..simgpu.cluster import Cluster
from ..simgpu.engine import ProcessGenerator
from ..simgpu.kernel import KernelSpec, WaveInfo, execute_kernel
from .baseline import PhaseTiming
from .calibration import (
    EMB_MIN_WAVES_FOR_PEAK,
    EMB_SAMPLES_PER_BLOCK,
    REMOTE_WRITE_KERNEL_DRAG,
    UNPACK_BANDWIDTH,
)
from .functional import ShardedEmbeddingTables
from .sharding import minibatch_bounds
from .workload import DeviceWorkload, alltoall_split_bytes

__all__ = [
    "table_row_gradients",
    "reference_backward",
    "baseline_functional_backward",
    "pgas_functional_backward",
    "BaselineBackward",
    "PGASFusedBackward",
]


# ---------------------------------------------------------------------------
# functional layer
# ---------------------------------------------------------------------------


def table_row_gradients(
    table: EmbeddingTable, field: JaggedField, grad_out: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-lookup row gradients of one table.

    ``grad_out`` is the upstream gradient of the pooled output, shape
    ``(B, d)``.  For sum pooling every index in sample *b*'s bag receives
    ``grad_out[b]``; for mean pooling it is scaled by ``1 / len(bag)``.
    Returns ``(rows, grads)`` with shape ``(nnz,)`` / ``(nnz, d)`` —
    duplicates *not* combined (that is the accumulator's job).
    """
    if grad_out.shape[0] != field.batch_size:
        raise ValueError(
            f"grad batch {grad_out.shape[0]} != field batch {field.batch_size}"
        )
    rows = table.hash(field.indices)
    lengths = field.lengths
    grads = np.repeat(grad_out, lengths, axis=0)
    mode = table.config.pooling
    if mode == "mean":
        scale = np.repeat(
            np.where(lengths > 0, 1.0 / np.maximum(lengths, 1), 0.0), lengths
        )
        grads = grads * scale[:, None].astype(grads.dtype)
    elif mode != "sum":
        raise NotImplementedError(f"backward for pooling {mode!r} is not supported")
    return rows, grads


def reference_backward(
    ebc_tables: Sequence[EmbeddingTable],
    batch: SparseBatch,
    grad_output: np.ndarray,
    lr: float = 1.0,
) -> None:
    """Single-device oracle: apply full-batch gradients to every table.

    ``grad_output`` has shape ``(B, F, d)`` in collection order.
    """
    if grad_output.shape[1] != len(ebc_tables):
        raise ValueError("grad_output feature dim != number of tables")
    for f, table in enumerate(ebc_tables):
        field = batch.field(table.name)
        rows, grads = table_row_gradients(table, field, grad_output[:, f, :])
        table.apply_row_gradients(rows, grads, lr=lr)


def baseline_functional_backward(
    sharded: ShardedEmbeddingTables,
    batch: SparseBatch,
    grad_outputs: Sequence[np.ndarray],
    lr: float = 1.0,
) -> None:
    """Collective-path backward: gather each table's full-batch grad, apply.

    ``grad_outputs[g]`` is device g's ``(B_g, F, d)`` upstream gradient.
    The all-to-all reassembles, per owner, the full-batch ``(B, T_loc, d)``
    gradient before one scatter-add per table — bit-identical to the
    reference because the full-batch gradient is applied in one shot.
    """
    plan = sharded.plan
    G = plan.n_devices
    B = batch.batch_size
    bounds = minibatch_bounds(B, G)
    if len(grad_outputs) != G:
        raise ValueError(f"need {G} per-device gradients, got {len(grad_outputs)}")
    for src in range(G):
        cols = plan.feature_indices_on(src)
        for j, table in enumerate(sharded.per_device[src]):
            # Reassemble the full-batch gradient of this table from every
            # device's mini-batch chunk (the wire contents of the a2a).
            full = np.concatenate(
                [np.asarray(grad_outputs[g])[:, cols[j], :] for g in range(G)], axis=0
            )
            field = batch.field(table.name)
            rows, grads = table_row_gradients(table, field, full)
            table.apply_row_gradients(rows, grads, lr=lr)


def pgas_functional_backward(
    sharded: ShardedEmbeddingTables,
    batch: SparseBatch,
    grad_outputs: Sequence[np.ndarray],
    lr: float = 1.0,
) -> None:
    """One-sided-path backward: per-source remote atomic adds.

    Each source device applies its mini-batch's contributions to every
    table directly (remote atomics for non-local tables) — accumulation
    order differs from the oracle by source, so results agree to float
    tolerance, not bitwise.
    """
    plan = sharded.plan
    G = plan.n_devices
    B = batch.batch_size
    bounds = minibatch_bounds(B, G)
    if len(grad_outputs) != G:
        raise ValueError(f"need {G} per-device gradients, got {len(grad_outputs)}")
    for g, (lo, hi) in enumerate(bounds):
        grad_g = np.asarray(grad_outputs[g])
        for src in range(G):
            cols = plan.feature_indices_on(src)
            for j, table in enumerate(sharded.per_device[src]):
                field = batch.field(table.name).slice_samples(lo, hi)
                rows, grads = table_row_gradients(table, field, grad_g[:, cols[j], :])
                table.apply_row_gradients(rows, grads, lr=lr)


# ---------------------------------------------------------------------------
# timed layer
# ---------------------------------------------------------------------------


def _backward_kernel_spec(wl: DeviceWorkload, name: str, *, owner_side: bool) -> KernelSpec:
    """Scatter-add kernel cost for one device.

    Owner side (baseline): read the full-batch gradients of local tables
    plus a read-modify-write of each looked-up row.  Source side (PGAS
    fused): read the local mini-batch gradients of *all* features plus the
    local share of row updates; remote contributions leave as atomics.
    """
    if owner_side:
        grad_bytes = float(wl.batch_size * wl.num_local_tables) * wl.row_bytes
        rmw = 3.0 * float(wl.nnz) * wl.row_bytes  # read grad, read row, write row
    else:
        B_local = float(wl.output_bytes_by_dst[wl.device_id]) / max(wl.row_bytes, 1)
        total_pairs = float(wl.batch_size * wl.num_local_tables)
        local_frac = B_local / total_pairs if total_pairs else 0.0
        grad_bytes = float(wl.batch_size * wl.num_local_tables) * wl.row_bytes
        rmw = 3.0 * float(wl.nnz) * local_frac * wl.row_bytes
    return KernelSpec(
        name=f"{name}.dev{wl.device_id}",
        num_blocks=wl.num_blocks,
        bytes_read=grad_bytes + rmw * 2.0 / 3.0,
        bytes_written=rmw / 3.0,
        flops=float(wl.nnz) * (wl.row_bytes / 4.0),
        block_weights=wl.block_weights,
        min_waves_for_peak=EMB_MIN_WAVES_FOR_PEAK,
    )


class BaselineBackward:
    """Timed collective backward: pack → all-to-all → scatter-add."""

    def __init__(
        self,
        cluster: Cluster,
        collective_spec: Optional[CollectiveSpec] = None,
        pack_bandwidth: float = UNPACK_BANDWIDTH,
    ):
        self.cluster = cluster
        self.collectives = CollectiveContext(cluster, collective_spec)
        self.pack_bandwidth = pack_bandwidth

    def run_batch(self, workloads: Sequence[DeviceWorkload]) -> PhaseTiming:
        """Simulate one backward pass; returns its phase timing."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(
        self, cluster: Cluster, workloads: Sequence[DeviceWorkload], timing: PhaseTiming
    ) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        coll_spec = self.collectives.spec
        t0 = engine.now

        # Pack: rearrange (B_g, F, d) grads into per-owner contiguous buffers.
        if G > 1:
            ops = []
            for dev, wl in zip(cluster.devices, workloads):
                to_pack = 2.0 * sum(
                    w.output_bytes_by_dst[dev.id] for w in workloads if w.device_id != dev.id
                )
                ops.append(
                    dev.default_stream.submit_delay(
                        dev.spec.kernel_launch_overhead_ns + to_pack / self.pack_bandwidth,
                        name=f"pack.dev{dev.id}",
                    )
                )
            yield engine.all_of([op.done for op in ops])
            yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now

        # Gradient all-to-all: forward split transposed (grads flow back).
        handle = self.collectives.all_to_all_single(alltoall_split_bytes(workloads).T)
        yield from handle.wait()
        t2 = engine.now

        # Owner-side scatter-add of the full-batch gradients.
        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            kspec = _backward_kernel_spec(wl, "baseline_emb_bwd", owner_side=True)
            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(
                dev.default_stream.submit(
                    lambda d=dev, k=kspec: execute_kernel(d, k), name=kspec.name
                )
            )
        yield engine.all_of([op.done for op in ops])
        yield engine.timeout(spec0.sync_overhead_ns)
        t3 = engine.now

        control = coll_spec.launch_overhead_ns + coll_spec.wait_overhead_ns
        timing.compute_ns = t3 - t2
        timing.comm_ns = max(t2 - t1 - control, 0.0) if G > 1 else 0.0
        timing.sync_unpack_ns = (t1 - t0) + (min(control, t2 - t1))
        timing.total_ns = t3 - t0


class PGASFusedBackward:
    """Timed one-sided backward: fused scatter-add + remote atomics."""

    def __init__(
        self,
        cluster: Cluster,
        pgas_spec: Optional[PGASSpec] = None,
        remote_write_drag: float = REMOTE_WRITE_KERNEL_DRAG,
    ):
        self.cluster = cluster
        self.pgas = PGASContext(cluster, pgas_spec)
        self.remote_write_drag = remote_write_drag

    def run_batch(self, workloads: Sequence[DeviceWorkload]) -> PhaseTiming:
        """Simulate one fused backward pass; returns its phase timing."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(
        self, cluster: Cluster, workloads: Sequence[DeviceWorkload], timing: PhaseTiming
    ) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        t0 = engine.now

        # Remote gradient volume from device g: its mini-batch's rows of
        # every non-local feature — the transpose of the forward pattern.
        split = alltoall_split_bytes(workloads).T

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            out_bytes = float(split[dev.id].sum())
            kspec = _backward_kernel_spec(wl, "pgas_emb_bwd", owner_side=False)
            if G > 1 and out_bytes > 0:
                peer = (dev.id + 1) % G
                link_bw = cluster.topology.link_spec(dev.id, peer).bandwidth
                drag = self.remote_write_drag * out_bytes / link_bw
                kspec = KernelSpec(
                    name=kspec.name,
                    num_blocks=kspec.num_blocks,
                    bytes_read=kspec.bytes_read,
                    bytes_written=kspec.bytes_written,
                    flops=kspec.flops,
                    block_weights=kspec.block_weights,
                    stretch_ns=drag,
                    min_waves_for_peak=kspec.min_waves_for_peak,
                )

            def on_wave(
                info: WaveInfo, dev_id: int = dev.id, row: np.ndarray = split[dev.id]
            ) -> None:
                for dst in range(G):
                    if dst == dev_id or row[dst] <= 0:
                        continue
                    # Each wave ships its share of the gradient atomics:
                    # one remote atomic per atomic_payload_bytes of gradient.
                    payload_elems = int(
                        round(row[dst] * info.fraction / self.pgas.spec.atomic_payload_bytes)
                    )
                    if payload_elems > 0:
                        self.pgas.atomic_add(dev_id, dst, payload_elems)

            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(
                dev.default_stream.submit(
                    lambda d=dev, k=kspec, cb=on_wave: execute_kernel(d, k, on_wave=cb),
                    name=kspec.name,
                )
            )

        yield engine.all_of([op.done for op in ops])
        if G > 1:
            quiets = [
                engine.process(self.pgas.quiet(dev.id), name=f"quiet{dev.id}")
                for dev in cluster.devices
            ]
            yield engine.all_of(quiets)
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now
        timing.compute_ns = t1 - t0
        timing.total_ns = t1 - t0
