"""Unified run configuration: one frozen spec for a whole experiment.

Every layer of the stack has its own config object — workload shape
(:class:`~repro.dlrm.data.WorkloadConfig`), model shape around the EMB
layer (:class:`~repro.core.pipeline.PipelineConfig`), the hot-row cache
(:class:`repro.cache.CacheConfig`), the fault wrapper
(:class:`repro.faults.ResilienceSpec`), the serving load
(:class:`~repro.core.serving.ServingSpec`) and the continuous-batching
scheduler (:class:`~repro.core.serving.SchedulerSpec`).  :class:`RunSpec`
composes them into a single validated, serialisable value with one
``from_spec`` constructor on each entry point:

>>> from repro import RunSpec, preset_runspec
>>> spec = preset_runspec("tiny", n_devices=2)
>>> emb = DistributedEmbedding.from_spec(spec)          # doctest: +SKIP
>>> pipe = DLRMInferencePipeline.from_spec(spec)        # doctest: +SKIP
>>> srv = InferenceServer.from_spec(spec)               # doctest: +SKIP

``to_dict``/``from_dict`` round-trip bit-exact (and ``from_json`` accepts
the JSON form), so a run's full configuration can live in an artifact,
a CI matrix entry, or a bug report, and reproduce the run byte-for-byte.
The CLI presets (``tiny``/``weak``/``strong``) are :func:`preset_runspec`
instances; keyword construction of the underlying configs keeps working
unchanged.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace
from typing import Any, Dict, Literal, Optional, Tuple

from ..dlrm.data import STRONG_SCALING_TOTAL, WEAK_SCALING_BASE, WorkloadConfig
from .pipeline import PipelineConfig
from .retrieval import BackendName, backend_spec
from .serving import SchedulerSpec, ServingSpec

__all__ = ["PRESETS", "RunSpec", "preset_runspec"]

#: named workload presets; ``weak``/``strong`` follow the paper's scaling
#: rules (§IV-A / §IV-B), ``tiny`` is the CI smoke configuration
PRESETS = ("tiny", "weak", "strong")


def _build_optional(cls, payload: Optional[Dict[str, Any]], section: str):
    """Rebuild an optional nested config from its dict form."""
    if payload is None:
        return None
    if not isinstance(payload, dict):
        raise TypeError(f"RunSpec section {section!r} must be a dict or null")
    return cls(**payload)


@dataclass(frozen=True)
class RunSpec:
    """One experiment's complete, validated configuration."""

    workload: WorkloadConfig
    n_devices: int = 2
    backend: BackendName = "pgas"
    bottom_mlp: Tuple[int, ...] = (512, 256)
    top_mlp: Tuple[int, ...] = (512, 256)
    interaction: Literal["dot", "cat", "sum"] = "dot"
    cache: Optional[object] = None  #: repro.cache.CacheConfig
    resilience: Optional[object] = None  #: repro.faults.ResilienceSpec
    compression: Optional[object] = None  #: repro.compress.CompressionSpec
    replication: Optional[object] = None  #: repro.replication.ReplicationSpec
    reshard: Optional[object] = None  #: repro.reshard.ReshardSpec
    hier: Optional[object] = None  #: repro.comm.hier.HierSpec
    obs: Optional[object] = None  #: repro.obs.TraceSpec
    serving: Optional[ServingSpec] = None
    scheduler: Optional[SchedulerSpec] = None  #: overrides serving.scheduler
    name: str = ""  #: free-form label (presets stamp theirs here)

    def __post_init__(self) -> None:
        if not isinstance(self.workload, WorkloadConfig):
            raise TypeError(
                f"RunSpec.workload must be a WorkloadConfig, "
                f"got {type(self.workload).__name__}"
            )
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        backend_spec(self.backend)  # unknown backend names raise here
        for attr in ("bottom_mlp", "top_mlp"):
            sizes = tuple(int(s) for s in getattr(self, attr))
            if any(s <= 0 for s in sizes):
                raise ValueError(f"{attr} layer widths must be positive")
            object.__setattr__(self, attr, sizes)
        if self.interaction not in ("dot", "cat", "sum"):
            raise ValueError(f"unknown interaction {self.interaction!r}")
        if self.serving is not None and not isinstance(self.serving, ServingSpec):
            raise TypeError(
                f"RunSpec.serving must be a ServingSpec, "
                f"got {type(self.serving).__name__}"
            )
        if self.scheduler is not None and not isinstance(self.scheduler, SchedulerSpec):
            raise TypeError(
                f"RunSpec.scheduler must be a SchedulerSpec, "
                f"got {type(self.scheduler).__name__}"
            )
        if self.cache is not None:
            from ..cache import CacheConfig  # lazy: avoid import cycle

            if not isinstance(self.cache, CacheConfig):
                raise TypeError(
                    f"RunSpec.cache must be a repro.cache.CacheConfig, "
                    f"got {type(self.cache).__name__}"
                )
        if self.resilience is not None:
            from ..faults import ResilienceSpec  # lazy: avoid import cycle

            if not isinstance(self.resilience, ResilienceSpec):
                raise TypeError(
                    f"RunSpec.resilience must be a repro.faults.ResilienceSpec, "
                    f"got {type(self.resilience).__name__}"
                )
        if self.compression is not None:
            from ..compress import CompressionSpec  # lazy: avoid import cycle

            if not isinstance(self.compression, CompressionSpec):
                raise TypeError(
                    f"RunSpec.compression must be a repro.compress.CompressionSpec, "
                    f"got {type(self.compression).__name__}"
                )
        if self.replication is not None:
            from ..replication import ReplicationSpec  # lazy: avoid import cycle

            if not isinstance(self.replication, ReplicationSpec):
                raise TypeError(
                    f"RunSpec.replication must be a repro.replication.ReplicationSpec, "
                    f"got {type(self.replication).__name__}"
                )
        if self.reshard is not None:
            from ..reshard import ReshardSpec  # lazy: avoid import cycle

            if not isinstance(self.reshard, ReshardSpec):
                raise TypeError(
                    f"RunSpec.reshard must be a repro.reshard.ReshardSpec, "
                    f"got {type(self.reshard).__name__}"
                )
        if self.hier is not None:
            from ..comm.hier import HierSpec  # lazy: avoid import cycle

            if not isinstance(self.hier, HierSpec):
                raise TypeError(
                    f"RunSpec.hier must be a repro.comm.hier.HierSpec, "
                    f"got {type(self.hier).__name__}"
                )
        if self.obs is not None:
            from ..obs import TraceSpec  # lazy: avoid import cycle

            if not isinstance(self.obs, TraceSpec):
                raise TypeError(
                    f"RunSpec.obs must be a repro.obs.TraceSpec, "
                    f"got {type(self.obs).__name__}"
                )

    # -- derived section views ---------------------------------------------------

    def pipeline_config(self) -> PipelineConfig:
        """The model-shape section as a :class:`PipelineConfig`."""
        return PipelineConfig(
            workload=self.workload,
            bottom_mlp=self.bottom_mlp,
            top_mlp=self.top_mlp,
            interaction=self.interaction,
        )

    def serving_spec(self) -> ServingSpec:
        """The serving section, with the top-level scheduler merged in.

        A top-level ``scheduler`` overrides an absent ``serving.scheduler``
        (it never silently overrides an explicit one — that would make two
        places disagree about the same knob).
        """
        if self.serving is None:
            raise ValueError(
                "this RunSpec has no serving section; set serving=ServingSpec(...)"
            )
        if self.scheduler is not None and self.serving.scheduler is None:
            return replace(self.serving, scheduler=self.scheduler)
        return self.serving

    # -- serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; ``RunSpec.from_dict`` round-trips bit-exact."""
        return {
            "name": self.name,
            "n_devices": self.n_devices,
            "backend": str(self.backend),
            "workload": dataclasses.asdict(self.workload),
            "model": {
                "bottom_mlp": list(self.bottom_mlp),
                "top_mlp": list(self.top_mlp),
                "interaction": self.interaction,
            },
            "cache": dataclasses.asdict(self.cache) if self.cache else None,
            "resilience": (
                dataclasses.asdict(self.resilience) if self.resilience else None
            ),
            "compression": (
                dataclasses.asdict(self.compression) if self.compression else None
            ),
            "replication": (
                dataclasses.asdict(self.replication) if self.replication else None
            ),
            "reshard": dataclasses.asdict(self.reshard) if self.reshard else None,
            "hier": dataclasses.asdict(self.hier) if self.hier else None,
            "obs": dataclasses.asdict(self.obs) if self.obs else None,
            "serving": dataclasses.asdict(self.serving) if self.serving else None,
            "scheduler": (
                dataclasses.asdict(self.scheduler) if self.scheduler else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunSpec":
        """Inverse of :meth:`to_dict` (validates; unknown keys raise)."""
        if not isinstance(data, dict):
            raise TypeError(f"RunSpec payload must be a dict, got {type(data).__name__}")
        known = {
            "name", "n_devices", "backend", "workload", "model",
            "cache", "resilience", "compression", "replication",
            "reshard", "hier", "obs", "serving", "scheduler",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec keys: {sorted(unknown)}")
        if "workload" not in data:
            raise ValueError("RunSpec payload needs a 'workload' section")
        from ..cache import CacheConfig  # lazy: avoid import cycle
        from ..comm.hier import HierSpec
        from ..compress import CompressionSpec
        from ..faults import ResilienceSpec
        from ..obs import TraceSpec
        from ..replication import ReplicationSpec
        from ..reshard import ReshardSpec

        model = dict(data.get("model") or {})
        serving_payload = data.get("serving")
        serving = None
        if serving_payload is not None:
            payload = dict(serving_payload)
            payload["cache"] = _build_optional(
                CacheConfig, payload.get("cache"), "serving.cache"
            )
            payload["resilience"] = _build_optional(
                ResilienceSpec, payload.get("resilience"), "serving.resilience"
            )
            payload["scheduler"] = _build_optional(
                SchedulerSpec, payload.get("scheduler"), "serving.scheduler"
            )
            serving = ServingSpec(**payload)
        return cls(
            workload=WorkloadConfig(**data["workload"]),
            n_devices=data.get("n_devices", 2),
            backend=data.get("backend", "pgas"),
            bottom_mlp=tuple(model.get("bottom_mlp", (512, 256))),
            top_mlp=tuple(model.get("top_mlp", (512, 256))),
            interaction=model.get("interaction", "dot"),
            cache=_build_optional(CacheConfig, data.get("cache"), "cache"),
            resilience=_build_optional(
                ResilienceSpec, data.get("resilience"), "resilience"
            ),
            compression=_build_optional(
                CompressionSpec, data.get("compression"), "compression"
            ),
            replication=_build_optional(
                ReplicationSpec, data.get("replication"), "replication"
            ),
            reshard=_build_optional(ReshardSpec, data.get("reshard"), "reshard"),
            hier=_build_optional(HierSpec, data.get("hier"), "hier"),
            obs=_build_optional(TraceSpec, data.get("obs"), "obs"),
            serving=serving,
            scheduler=_build_optional(
                SchedulerSpec, data.get("scheduler"), "scheduler"
            ),
            name=data.get("name", ""),
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON form (sorted keys)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


def preset_runspec(preset: str, n_devices: int = 2, **overrides) -> RunSpec:
    """Resolve a named preset to a :class:`RunSpec` for ``n_devices`` GPUs.

    ``tiny`` is the CI smoke shape; ``weak`` applies the paper's §IV-A
    rule (64 tables *per GPU*); ``strong`` is the §IV-B fixed total.
    ``overrides`` replace any :class:`RunSpec` field (e.g. ``backend=...``
    or a ``serving=ServingSpec(...)`` section).
    """
    if preset == "tiny":
        workload = WorkloadConfig(
            num_tables=8, rows_per_table=4096, dim=16, batch_size=256, max_pooling=8
        )
    elif preset == "weak":
        workload = WEAK_SCALING_BASE.scaled_tables(64 * n_devices)
    elif preset == "strong":
        workload = STRONG_SCALING_TOTAL
    else:
        raise ValueError(f"unknown preset {preset!r}; available: {', '.join(PRESETS)}")
    kwargs: Dict[str, Any] = dict(
        workload=workload, n_devices=n_devices, name=preset
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)
