"""Functional (real-data) distributed EMB forward passes.

The simulator times byte movements; this module actually *moves the
numbers*, at test scale, so the backends can be checked for correctness:

* :func:`reference_forward` — single-device oracle: the plain
  :class:`~repro.dlrm.embedding.EmbeddingBagCollection` forward.
* :func:`baseline_functional_forward` — the collective path: per-device
  model-parallel forward → batch-dim split into per-destination *send
  blocks* (the wire format of ``all_to_all_single``) → receive → **unpack**
  into the final ``(B_g, F, d)`` tensor via an explicit feature-permutation
  copy (the rearrangement step the paper eliminates).
* :func:`pgas_functional_forward` — the one-sided path: each pooled vector
  is written *directly* into the destination device's final output tensor
  at its final coordinates, no intermediate receive buffer.

Both distributed paths compute each table's pooled output with the same
kernel (``EmbeddingTable.forward`` on the full batch), so their results are
**bit-identical** to each other and to the reference — asserted by the
equality tests in ``tests/core/``.

:class:`ShardedEmbeddingTables` holds the per-device table instances; built
with :meth:`~ShardedEmbeddingTables.from_collection`, the shards *alias* the
reference collection's weight arrays, so no extra memory and exact parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dlrm.batch import SparseBatch
from ..dlrm.embedding import EmbeddingBagCollection, EmbeddingTable, EmbeddingTableConfig
from .sharding import TableWiseSharding, minibatch_bounds

__all__ = [
    "ShardedEmbeddingTables",
    "reference_forward",
    "baseline_functional_forward",
    "pgas_functional_forward",
    "SendBlock",
]


@dataclass(frozen=True)
class SendBlock:
    """One (src → dst) payload of the baseline all-to-all.

    ``data`` has shape ``(B_dst, T_src, d)`` — the dst mini-batch's rows of
    every src-local table, in src-local table order (the contiguous chunk
    ``all_to_all_single`` sends).
    """

    src: int
    dst: int
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        """Payload size."""
        return self.data.nbytes


class ShardedEmbeddingTables:
    """Per-device embedding tables under a table-wise plan."""

    def __init__(self, plan: TableWiseSharding, per_device: Sequence[List[EmbeddingTable]]):
        if len(per_device) != plan.n_devices:
            raise ValueError(
                f"expected {plan.n_devices} device shards, got {len(per_device)}"
            )
        self.plan = plan
        self.per_device = [list(ts) for ts in per_device]
        for dev, tables in enumerate(self.per_device):
            expect = [t.name for t in plan.tables_on(dev)]
            got = [t.name for t in tables]
            if expect != got:
                raise ValueError(
                    f"device {dev}: tables {got} do not match plan {expect}"
                )

    @classmethod
    def from_collection(
        cls, ebc: EmbeddingBagCollection, plan: TableWiseSharding
    ) -> "ShardedEmbeddingTables":
        """Shard an existing collection; shards alias its weights."""
        per_device = [
            [ebc.table(cfg.name) for cfg in plan.tables_on(dev)]
            for dev in range(plan.n_devices)
        ]
        return cls(plan, per_device)

    @classmethod
    def build(
        cls,
        configs: Sequence[EmbeddingTableConfig],
        n_devices: int,
        *,
        strategy: str = "contiguous",
        rng: Optional[np.random.Generator] = None,
    ) -> "ShardedEmbeddingTables":
        """Create fresh weights and shard them."""
        ebc = EmbeddingBagCollection.from_configs(list(configs), rng=rng)
        plan = TableWiseSharding(list(configs), n_devices, strategy=strategy)  # type: ignore[arg-type]
        return cls.from_collection(ebc, plan)

    @property
    def n_devices(self) -> int:
        """Number of device shards."""
        return self.plan.n_devices

    @property
    def dim(self) -> int:
        """Shared embedding dimension."""
        return self.plan.table_configs[0].dim

    @property
    def dtype(self) -> np.dtype:
        """Shared weight dtype."""
        return self.plan.table_configs[0].dtype

    def local_forward(self, device_id: int, batch: SparseBatch) -> np.ndarray:
        """Model-parallel step: full batch over this device's tables.

        Returns ``(B, T_local, d)`` in local table order.
        """
        tables = self.per_device[device_id]
        B = batch.batch_size
        out = np.empty((B, len(tables), self.dim), dtype=self.dtype)
        for j, table in enumerate(tables):
            out[:, j, :] = table.forward(batch.field(table.name))
        return out


def reference_forward(ebc: EmbeddingBagCollection, batch: SparseBatch) -> np.ndarray:
    """Single-device oracle: ``(B, F, d)``."""
    return ebc.forward(batch)


def baseline_functional_forward(
    sharded: ShardedEmbeddingTables, batch: SparseBatch
) -> Tuple[List[np.ndarray], List[SendBlock]]:
    """Collective-path forward: returns (per-device outputs, wire blocks).

    Per-device output ``g`` has shape ``(B_g, F, d)`` with features in
    global order.  The returned :class:`SendBlock` list is the exact
    all-to-all wire traffic (useful for byte-accounting tests).
    """
    plan = sharded.plan
    G = plan.n_devices
    B = batch.batch_size
    F = plan.num_tables
    bounds = minibatch_bounds(B, G)

    # Phase 1 — model-parallel compute on every src device.
    local_out = [sharded.local_forward(src, batch) for src in range(G)]

    # Phase 2 — split along the batch dim into per-destination send blocks.
    blocks: List[SendBlock] = []
    for src in range(G):
        for dst, (lo, hi) in enumerate(bounds):
            blocks.append(SendBlock(src=src, dst=dst, data=local_out[src][lo:hi]))

    # Phase 3 — receive + UNPACK: copy each block into its final feature
    # columns.  This explicit rearrangement is the step PGAS removes.
    outputs: List[np.ndarray] = []
    for dst, (lo, hi) in enumerate(bounds):
        final = np.zeros((hi - lo, F, sharded.dim), dtype=sharded.dtype)
        for block in blocks:
            if block.dst != dst:
                continue
            cols = plan.feature_indices_on(block.src)
            final[:, cols, :] = block.data
        outputs.append(final)
    return outputs, blocks


def pgas_functional_forward(
    sharded: ShardedEmbeddingTables, batch: SparseBatch
) -> List[np.ndarray]:
    """One-sided-path forward: per-device ``(B_g, F, d)`` outputs.

    Each source writes its pooled vectors straight into the destination
    tensors at their final coordinates (Listing 2's
    ``sum.store(outputs[output_idx], pe)``) — no send blocks, no unpack.
    """
    plan = sharded.plan
    G = plan.n_devices
    B = batch.batch_size
    F = plan.num_tables
    bounds = minibatch_bounds(B, G)

    # Destination tensors pre-exist on every device (symmetric allocation).
    outputs = [
        np.zeros((hi - lo, F, sharded.dim), dtype=sharded.dtype) for lo, hi in bounds
    ]

    for src in range(G):
        cols = plan.feature_indices_on(src)
        for j, table in enumerate(sharded.per_device[src]):
            pooled = table.forward(batch.field(table.name))  # (B, d)
            # One-sided writes: each sample's vector lands at its final
            # (sample - lo, feature, :) slot on the owning device.
            for dst, (lo, hi) in enumerate(bounds):
                outputs[dst][:, cols[j], :] = pooled[lo:hi]
    return outputs
