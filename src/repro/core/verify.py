"""Self-check utilities: functional equivalence and byte-accounting audits.

``verify_backend_equivalence`` is the library's own acceptance test,
exposed as API so downstream users can run it against *their* table
configurations before trusting a backend swap:

1. functional — both backends' outputs must be bit-identical to the
   single-device oracle on randomized batches;
2. accounting — the timing model's all-to-all split matrix must equal the
   functional layer's actual wire bytes, pair by pair;
3. conservation — every remote byte the PGAS path issues must be delivered
   (simulator-side counter == workload-side expectation).

Returns a :class:`VerificationReport`; raises :class:`VerificationError`
with a precise description on the first violated invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..dlrm.data import SyntheticDataGenerator, WorkloadConfig
from ..dlrm.embedding import EmbeddingBagCollection, EmbeddingTableConfig
from ..simgpu.cluster import dgx_v100
from .functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
    reference_forward,
)
from .pgas_retrieval import PGASFusedRetrieval
from .sharding import TableWiseSharding, minibatch_bounds
from .workload import alltoall_split_bytes, build_device_workloads, lengths_from_batch

__all__ = ["VerificationError", "VerificationReport", "verify_backend_equivalence"]


class VerificationError(AssertionError):
    """An equivalence or accounting invariant failed."""


@dataclass
class VerificationReport:
    """What was checked and how much."""

    n_devices: int
    num_tables: int
    batches_checked: int = 0
    samples_checked: int = 0
    wire_bytes_audited: float = 0.0
    checks: List[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-paragraph human-readable result."""
        return (
            f"verified {self.batches_checked} batches "
            f"({self.samples_checked} samples) of {self.num_tables} tables on "
            f"{self.n_devices} devices; audited {self.wire_bytes_audited:,.0f} "
            f"wire bytes; checks: {', '.join(self.checks)}"
        )


def verify_backend_equivalence(
    tables: Union[WorkloadConfig, Sequence[EmbeddingTableConfig]],
    n_devices: int,
    *,
    n_batches: int = 3,
    batch_size: Optional[int] = None,
    max_pooling: int = 8,
    seed: int = 0,
) -> VerificationReport:
    """Run the three audits; returns a report or raises on failure."""
    if isinstance(tables, WorkloadConfig):
        workload = tables
        table_configs = workload.table_configs()
    else:
        table_configs = list(tables)
        workload = WorkloadConfig(
            num_tables=len(table_configs),
            rows_per_table=max(t.num_rows for t in table_configs),
            dim=table_configs[0].dim,
            batch_size=batch_size or 64,
            max_pooling=max_pooling,
            seed=seed,
        )
        # Regenerate configs so generator feature names match.
        table_configs = workload.table_configs()
    if batch_size is not None:
        workload = workload.with_batch_size(batch_size)
    if n_batches <= 0:
        raise ValueError("n_batches must be positive")

    report = VerificationReport(n_devices=n_devices, num_tables=len(table_configs))
    ebc = EmbeddingBagCollection.from_configs(
        table_configs, rng=np.random.default_rng(seed)
    )
    plan = TableWiseSharding(table_configs, n_devices)
    plan.validate()
    sharded = ShardedEmbeddingTables.from_collection(ebc, plan)
    gen = SyntheticDataGenerator(workload)

    for b in range(n_batches):
        batch = gen.sparse_batch()
        bounds = minibatch_bounds(batch.batch_size, n_devices)

        # -- check 1: functional equivalence ------------------------------------
        ref = reference_forward(ebc, batch)
        base_out, blocks = baseline_functional_forward(sharded, batch)
        pgas_out = pgas_functional_forward(sharded, batch)
        for g, (lo, hi) in enumerate(bounds):
            if not np.array_equal(base_out[g], ref[lo:hi]):
                raise VerificationError(
                    f"batch {b}: baseline output diverges from oracle on device {g}"
                )
            if not np.array_equal(pgas_out[g], base_out[g]):
                raise VerificationError(
                    f"batch {b}: PGAS output diverges from baseline on device {g}"
                )

        # -- check 2: wire-format accounting --------------------------------------
        workloads = build_device_workloads(plan, lengths_from_batch(batch))
        split = alltoall_split_bytes(workloads)
        for block in blocks:
            if block.src == block.dst:
                continue
            modeled = split[block.src, block.dst]
            if block.nbytes != modeled:
                raise VerificationError(
                    f"batch {b}: wire bytes {block.src}->{block.dst}: functional "
                    f"{block.nbytes} != modeled {modeled}"
                )
            report.wire_bytes_audited += block.nbytes

        # -- check 3: delivery conservation ----------------------------------------
        cluster = dgx_v100(n_devices)
        retrieval = PGASFusedRetrieval(cluster)
        retrieval.run_batch(workloads)
        expected_remote = sum(wl.remote_output_bytes for wl in workloads)
        if n_devices > 1:
            from ..comm.pgas import PGASContext

            delivered = cluster.profiler.counter(PGASContext.COUNTER).total
            if abs(delivered - expected_remote) > 0.5:
                raise VerificationError(
                    f"batch {b}: PGAS delivered {delivered} B but the workload "
                    f"model expected {expected_remote} B"
                )

        report.batches_checked += 1
        report.samples_checked += batch.batch_size

    report.checks = ["functional-equivalence", "wire-accounting", "delivery-conservation"]
    return report
