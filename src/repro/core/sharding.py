"""Embedding-table sharding plans (model parallelism) and output ownership.

Two axes of partitioning exist in the distributed EMB forward (paper
Fig. 4):

* **Tables over devices** (model parallelism) — a :class:`ShardingPlan`
  assigns each embedding table to an owning device.  The paper uses "a
  simple table sharding scheme (partitioning by tables)"; we implement that
  (:class:`TableWiseSharding`, contiguous or round-robin) plus the
  row-wise scheme it cites as future work (:class:`RowWiseSharding`,
  RecShard-style).
* **Samples over devices** (data parallelism) — the batch dimension is cut
  into even mini-batches; :func:`sample_owner` is the simulator's
  ``GetEmbOwnerId`` of Listing 2: given a sample index, which device's
  mini-batch (and hence which device's output tensor) it belongs to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..dlrm.embedding import EmbeddingTableConfig

__all__ = [
    "minibatch_bounds",
    "sample_owner",
    "ShardingError",
    "ShardingPlan",
    "TableWiseSharding",
    "RowWiseSharding",
    "RowShard",
]


class ShardingError(ValueError):
    """A sharding-plan lookup that cannot be satisfied.

    Raised (instead of a bare ``KeyError``/``IndexError``) when a plan is
    asked about a table it does not contain or a device outside its range,
    so callers can catch one typed error across every plan flavour.
    """


def minibatch_bounds(batch_size: int, n_devices: int) -> List[Tuple[int, int]]:
    """Even cut of the batch dimension; remainder spread over leading devices."""
    if batch_size <= 0 or n_devices <= 0:
        raise ValueError("batch_size and n_devices must be positive")
    base, rem = divmod(batch_size, n_devices)
    bounds = []
    lo = 0
    for p in range(n_devices):
        hi = lo + base + (1 if p < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def sample_owner(batch_size: int, n_devices: int) -> np.ndarray:
    """Owner device of every sample — the ``GetEmbOwnerId`` map.

    Returns int array of shape ``(batch_size,)`` with values in
    ``[0, n_devices)``, consistent with :func:`minibatch_bounds`.
    """
    owners = np.empty(batch_size, dtype=np.int64)
    for dev, (lo, hi) in enumerate(minibatch_bounds(batch_size, n_devices)):
        owners[lo:hi] = dev
    return owners


class ShardingPlan:
    """Base interface: which device owns which (table, rows)."""

    def __init__(self, table_configs: Sequence[EmbeddingTableConfig], n_devices: int):
        if not table_configs:
            raise ValueError("a sharding plan needs at least one table")
        if n_devices <= 0:
            raise ValueError("n_devices must be positive")
        names = [t.name for t in table_configs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate table names")
        self.table_configs = list(table_configs)
        self.n_devices = n_devices
        self._index: Dict[str, int] = {t.name: i for i, t in enumerate(table_configs)}

    @property
    def num_tables(self) -> int:
        """Total number of tables in the plan."""
        return len(self.table_configs)

    def feature_index(self, name: str) -> int:
        """Global feature position of a table (output-tensor layout order)."""
        return self._index[name]

    # abstract ----------------------------------------------------------------

    def tables_on(self, device_id: int) -> List[EmbeddingTableConfig]:
        """Table configs owned (fully or partially) by a device."""
        raise NotImplementedError

    def memory_bytes(self, device_id: int) -> int:
        """Embedding-weight bytes resident on a device."""
        raise NotImplementedError

    def validate(self) -> None:
        """Check the partition is exact (every row owned exactly once)."""
        raise NotImplementedError


class TableWiseSharding(ShardingPlan):
    """Whole tables assigned to devices (the paper's scheme).

    ``strategy="contiguous"`` gives device *g* the block of tables
    ``[g * T/G, (g+1) * T/G)`` (so the unpack step is a plain feature-axis
    concatenation); ``"round_robin"`` stripes tables over devices (better
    balance for heterogeneous tables, needs a feature permutation on
    unpack).  Both are exact partitions.
    """

    def __init__(
        self,
        table_configs: Sequence[EmbeddingTableConfig],
        n_devices: int,
        strategy: Literal["contiguous", "round_robin", "explicit"] = "contiguous",
        owners: Optional[Mapping[str, int]] = None,
    ):
        super().__init__(table_configs, n_devices)
        if strategy not in ("contiguous", "round_robin", "explicit"):
            raise ValueError(f"unknown strategy {strategy!r}")
        if (strategy == "explicit") != (owners is not None):
            raise ValueError("owners must be given exactly when strategy='explicit'")
        self.strategy = strategy
        self._owner: Dict[str, int] = {}
        T = self.num_tables
        if strategy == "contiguous":
            bounds = minibatch_bounds(T, n_devices)
            for dev, (lo, hi) in enumerate(bounds):
                for i in range(lo, hi):
                    self._owner[self.table_configs[i].name] = dev
        elif strategy == "round_robin":
            for i, cfg in enumerate(self.table_configs):
                self._owner[cfg.name] = i % n_devices
        else:
            assert owners is not None
            for cfg in self.table_configs:
                if cfg.name not in owners:
                    raise ValueError(f"no owner for table {cfg.name!r}")
                self._owner[cfg.name] = int(owners[cfg.name])
            self.validate()

    @classmethod
    def from_assignment(
        cls,
        table_configs: Sequence[EmbeddingTableConfig],
        n_devices: int,
        owners: Mapping[str, int],
    ) -> "TableWiseSharding":
        """Plan from an explicit table→device map (e.g. a planner's output)."""
        return cls(table_configs, n_devices, strategy="explicit", owners=owners)

    def owner_of(self, table_name: str) -> int:
        """Device owning a table."""
        return self._owner[table_name]

    def tables_on(self, device_id: int) -> List[EmbeddingTableConfig]:
        """Tables owned by ``device_id``, in global feature order."""
        return [t for t in self.table_configs if self._owner[t.name] == device_id]

    def feature_indices_on(self, device_id: int) -> np.ndarray:
        """Global feature positions of a device's tables."""
        return np.array(
            [self._index[t.name] for t in self.tables_on(device_id)], dtype=np.int64
        )

    def memory_bytes(self, device_id: int) -> int:
        """Weight bytes resident on a device."""
        return sum(t.nbytes for t in self.tables_on(device_id))

    def validate(self) -> None:
        """Every table owned exactly once by an in-range device."""
        seen = set()
        for name, dev in self._owner.items():
            if not (0 <= dev < self.n_devices):
                raise AssertionError(f"table {name!r} owned by out-of-range device {dev}")
            if name in seen:
                raise AssertionError(f"table {name!r} owned twice")
            seen.add(name)
        if seen != {t.name for t in self.table_configs}:
            raise AssertionError("some tables are unowned")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TableWiseSharding T={self.num_tables} G={self.n_devices} "
            f"{self.strategy}>"
        )


@dataclass(frozen=True)
class RowShard:
    """A device's row range of one table under row-wise sharding."""

    table_name: str
    device_id: int
    row_lo: int
    row_hi: int

    @property
    def num_rows(self) -> int:
        """Rows in this shard."""
        return self.row_hi - self.row_lo


class RowWiseSharding(ShardingPlan):
    """Each table's rows split evenly across all devices (§V / RecShard).

    Every device holds a horizontal slice of every table; a lookup's rows
    scatter across devices, and per-device *partial* pools must be reduced —
    the heavier communication pattern the paper's future-work section
    discusses.
    """

    def __init__(self, table_configs: Sequence[EmbeddingTableConfig], n_devices: int):
        super().__init__(table_configs, n_devices)
        self._shards: Dict[str, List[RowShard]] = {}
        for cfg in self.table_configs:
            bounds = minibatch_bounds(cfg.num_rows, n_devices)
            self._shards[cfg.name] = [
                RowShard(cfg.name, dev, lo, hi) for dev, (lo, hi) in enumerate(bounds)
            ]

    def shards_of(self, table_name: str) -> List[RowShard]:
        """All device shards of one table."""
        if table_name not in self._shards:
            raise ShardingError(
                f"table {table_name!r} is not in this row-wise plan "
                f"({self.num_tables} tables)"
            )
        return list(self._shards[table_name])

    def shard_on(self, table_name: str, device_id: int) -> RowShard:
        """One device's shard of one table.

        Raises :class:`ShardingError` (not ``KeyError``) for unknown
        tables or out-of-range devices.
        """
        if table_name not in self._shards:
            raise ShardingError(
                f"table {table_name!r} is not in this row-wise plan "
                f"({self.num_tables} tables)"
            )
        if not (0 <= device_id < self.n_devices):
            raise ShardingError(
                f"device {device_id} out of range for the "
                f"{self.n_devices}-device plan"
            )
        return self._shards[table_name][device_id]

    def row_owner(self, table_name: str, rows: np.ndarray) -> np.ndarray:
        """Owning device of each (hashed) row id — vectorised."""
        shards = self._shards[table_name]
        cuts = np.array([s.row_hi for s in shards[:-1]], dtype=np.int64)
        return np.searchsorted(cuts, np.asarray(rows, dtype=np.int64), side="right")

    def tables_on(self, device_id: int) -> List[EmbeddingTableConfig]:
        """Row-wise: every device holds a slice of every table."""
        return list(self.table_configs)

    def memory_bytes(self, device_id: int) -> int:
        """Weight bytes of all this device's row slices."""
        return sum(
            self._shards[t.name][device_id].num_rows * t.row_bytes
            for t in self.table_configs
        )

    def validate(self) -> None:
        """Shards of each table tile ``[0, num_rows)`` exactly."""
        for cfg in self.table_configs:
            shards = self._shards[cfg.name]
            if shards[0].row_lo != 0 or shards[-1].row_hi != cfg.num_rows:
                raise AssertionError(f"table {cfg.name!r}: shards do not span all rows")
            for a, b in zip(shards, shards[1:]):
                if a.row_hi != b.row_lo:
                    raise AssertionError(f"table {cfg.name!r}: gap/overlap at {a.row_hi}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RowWiseSharding T={self.num_tables} G={self.n_devices}>"
