"""Timed end-to-end DLRM *training* step (the paper's §I motivation).

"More than 50% of machine learning training time at Meta is devoted to
deep learning recommendation models" — and the EMB layer's communication
appears **twice** per training step: the forward layout conversion this
paper optimises, and the backward gradient exchange its §V sketches.
This module composes the timed pieces into one step:

1. forward: input staging, dense MLP ∥ distributed EMB forward (Fig. 4),
   interaction + top MLP (:class:`~repro.core.pipeline.DLRMInferencePipeline`);
2. dense backward: top MLP, interaction, bottom MLP gradient kernels
   (data-parallel, local) plus the gradient all-reduce for the replicated
   MLP weights — the part DLRM systems overlap with the EMB backward;
3. EMB backward: the chosen scheme's gradient exchange + scatter-add
   (:mod:`repro.core.backward`), overlapped with the dense backward.

``run_step`` returns a :class:`TrainStepTiming` with forward, backward,
and total times per backend — the bench shows the PGAS advantage roughly
doubles when both directions are counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..comm.collective import CollectiveContext, CollectiveSpec
from ..simgpu.cluster import Cluster
from ..simgpu.engine import ProcessGenerator
from ..simgpu.kernel import KernelSpec, execute_kernel
from .backward import BaselineBackward, PGASFusedBackward
from .baseline import PhaseTiming
from .pipeline import DLRMInferencePipeline, PipelineConfig, PipelineTiming
from .retrieval import BackendName
from .sharding import minibatch_bounds
from .workload import build_device_workloads

__all__ = ["TrainStepTiming", "DLRMTrainingPipeline"]


@dataclass
class TrainStepTiming:
    """Per-phase wall times of one (or many accumulated) training steps."""

    forward: PipelineTiming = field(default_factory=PipelineTiming)
    dense_backward_ns: float = 0.0
    emb_backward: PhaseTiming = field(default_factory=PhaseTiming)
    total_ns: float = 0.0
    steps: int = 0

    def add(self, other: "TrainStepTiming") -> None:
        """Accumulate another step."""
        self.forward.add(other.forward)
        self.dense_backward_ns += other.dense_backward_ns
        self.emb_backward.add(other.emb_backward)
        self.total_ns += other.total_ns
        self.steps += other.steps


class DLRMTrainingPipeline:
    """Timed training steps with a pluggable EMB communication backend."""

    def __init__(
        self,
        config: PipelineConfig,
        n_devices: int,
        *,
        backend: BackendName = "pgas",
        cluster: Optional[Cluster] = None,
        collective_spec: Optional[CollectiveSpec] = None,
    ):
        self.config = config
        self.backend: BackendName = backend
        self.forward_pipeline = DLRMInferencePipeline(
            config, n_devices, backend=backend, cluster=cluster,
            collective_spec=collective_spec,
        )
        self.cluster = self.forward_pipeline.cluster
        self.plan = self.forward_pipeline.plan
        self._bwd_baseline = BaselineBackward(self.cluster, collective_spec)
        self._bwd_pgas = PGASFusedBackward(self.cluster)
        self._mlp_allreduce = CollectiveContext(self.cluster, collective_spec)

    # -- cost helpers -------------------------------------------------------------

    def _dense_backward_kernel(self, dev_id: int) -> KernelSpec:
        """Backward through top MLP + interaction + bottom MLP: ~2x forward."""
        cfg = self.config
        top = self.forward_pipeline._mlp_kernel("top_mlp_bwd", dev_id, cfg.top_sizes)
        bottom = self.forward_pipeline._mlp_kernel(
            "bottom_mlp_bwd", dev_id, cfg.bottom_sizes
        )
        inter = self.forward_pipeline._interaction_kernel(dev_id)
        return KernelSpec(
            name=f"dense_bwd.dev{dev_id}",
            num_blocks=top.num_blocks + bottom.num_blocks + inter.num_blocks,
            bytes_read=2.0 * (top.bytes_read + bottom.bytes_read + inter.bytes_read),
            bytes_written=2.0 * (top.bytes_written + bottom.bytes_written + inter.bytes_written),
            flops=2.0 * (top.flops + bottom.flops + inter.flops),
        )

    def _mlp_weight_bytes(self) -> float:
        """Replicated MLP parameter bytes (the all-reduce payload)."""
        cfg = self.config
        total = 0.0
        for sizes in (cfg.bottom_sizes, cfg.top_sizes):
            total += 4.0 * sum(a * b + b for a, b in zip(sizes, sizes[1:]))
        return total

    # -- running --------------------------------------------------------------------

    def run_step(
        self,
        lengths_by_feature: Mapping[str, np.ndarray],
        backend: Optional[BackendName] = None,
    ) -> TrainStepTiming:
        """Simulate one forward + backward training step."""
        be = backend or self.backend
        timing = TrainStepTiming(steps=1)
        workloads = build_device_workloads(self.plan, lengths_by_feature)

        def step(cluster: Cluster) -> ProcessGenerator:
            engine = cluster.engine
            t0 = engine.now
            # ---- forward -------------------------------------------------------
            timing.forward.batches = 1
            yield engine.process(
                self.forward_pipeline._process(cluster, workloads, timing.forward, be),
                name="train_forward",
            )
            t1 = engine.now

            # ---- backward: dense path ∥ EMB gradient exchange ------------------
            def dense_backward() -> ProcessGenerator:
                ops = []
                for dev in cluster.devices:
                    k = self._dense_backward_kernel(dev.id)
                    stream = dev.stream("dense")
                    stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
                    ops.append(stream.submit(
                        lambda d=dev, ks=k: execute_kernel(d, ks), name=k.name))
                yield engine.all_of([op.done for op in ops])
                # Data-parallel MLP weights: ring all-reduce of the grads.
                if cluster.n_devices > 1:
                    handle = self._mlp_allreduce.all_reduce(self._mlp_weight_bytes())
                    yield from handle.wait()
                return engine.now

            bwd = self._bwd_baseline if be == "baseline" else self._bwd_pgas
            timing.emb_backward.batches = 1
            dense_proc = engine.process(dense_backward(), name="dense_bwd")
            emb_proc = engine.process(
                bwd._process(cluster, workloads, timing.emb_backward),
                name="emb_bwd",
            )
            yield engine.all_of([dense_proc, emb_proc])
            t2 = engine.now
            timing.dense_backward_ns = dense_proc.value - t1
            timing.total_ns = t2 - t0

        self.cluster.run(step)
        return timing

    def run_steps(self, lengths_iter, backend: Optional[BackendName] = None) -> TrainStepTiming:
        """Accumulate over an iterable of per-step length maps."""
        total = TrainStepTiming()
        for lengths in lengths_iter:
            total.add(self.run_step(lengths, backend))
        return total
