"""Derived per-device EMB kernel workloads and communication volumes.

Bridges the functional world (jagged batches, sharding plans) and the
simulator world (kernel specs, byte matrices).  Both retrieval backends
consume a :class:`DeviceWorkload` per device:

* the **baseline** uses its :meth:`DeviceWorkload.kernel_spec` plus the
  all-to-all :func:`alltoall_split_bytes` matrix and
  :func:`unpack_bytes_received`;
* the **PGAS fused** backend additionally needs *where each thread block's
  outputs go* — :attr:`DeviceWorkload.block_dst_bytes` — so each retiring
  wave can inject exactly its remote bytes toward each destination.

Timing never needs the index values themselves, only the jagged *lengths*
(pooling factors): byte counts are fully determined by them.  That is what
lets the benchmarks run the paper-scale configuration (17 GB of simulated
reads per GPU per batch) without allocating any of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..dlrm.batch import SparseBatch
from ..simgpu.device import DeviceSpec
from ..simgpu.kernel import KernelSpec
from .calibration import (
    EMB_MIN_WAVES_FOR_PEAK,
    EMB_SAMPLES_PER_BLOCK,
    INDEX_BYTES,
    OFFSET_BYTES,
)
from .sharding import TableWiseSharding, minibatch_bounds, sample_owner

__all__ = [
    "DeviceWorkload",
    "build_device_workloads",
    "lengths_from_batch",
    "alltoall_split_bytes",
    "rehome_workloads",
    "table_segments",
    "unpack_bytes_received",
]


def lengths_from_batch(batch: SparseBatch) -> Dict[str, np.ndarray]:
    """Per-feature pooling-factor arrays of a functional batch."""
    return {name: field.lengths for name, field in batch}


@dataclass
class DeviceWorkload:
    """One device's share of an EMB forward pass, in byte terms.

    Attributes
    ----------
    device_id:
        The owning device.
    batch_size:
        Full (global) batch size B — model parallelism means every device
        processes the *full batch* of its local features.
    row_bytes:
        Bytes of one embedding vector (d × itemsize).
    num_local_tables:
        Tables resident on this device.
    nnz:
        Total lookups this device performs.
    num_blocks / samples_per_block:
        Grid geometry of the retrieval kernel.
    block_weights:
        Per-block lookup counts (jagged work distribution across the grid).
    block_dst_bytes:
        ``(num_blocks, n_devices)`` — output bytes each block produces for
        each destination device's mini-batch.  Row sums are the block's
        total output; the off-diagonal (≠ ``device_id``) columns are what
        the PGAS kernel sends as one-sided writes.
    """

    device_id: int
    n_devices: int
    batch_size: int
    row_bytes: int
    num_local_tables: int
    nnz: int
    num_blocks: int
    samples_per_block: int
    block_weights: np.ndarray
    block_dst_bytes: np.ndarray

    # -- totals ------------------------------------------------------------------

    @property
    def bytes_read(self) -> float:
        """Kernel DRAM reads: embedding rows + indices + offsets."""
        return (
            float(self.nnz) * self.row_bytes
            + float(self.nnz) * INDEX_BYTES
            + float(self.batch_size * self.num_local_tables + 1) * OFFSET_BYTES
        )

    @property
    def bytes_written(self) -> float:
        """Kernel output writes: one pooled vector per (table, sample)."""
        return float(self.batch_size * self.num_local_tables) * self.row_bytes

    @property
    def flops(self) -> float:
        """Pooling additions (negligible next to the gather, as measured)."""
        dim = self.row_bytes / 4.0
        return float(self.nnz) * dim

    @property
    def output_bytes_by_dst(self) -> np.ndarray:
        """Total output bytes destined to each device, ``(n_devices,)``."""
        return self.block_dst_bytes.sum(axis=0)

    @property
    def remote_output_bytes(self) -> float:
        """Output bytes leaving this device (the paper's comm volume)."""
        out = self.output_bytes_by_dst
        return float(out.sum() - out[self.device_id])

    def kernel_spec(self, name: str = "emb_forward") -> KernelSpec:
        """Simulator kernel launch for this device's retrieval pass."""
        return KernelSpec(
            name=f"{name}.dev{self.device_id}",
            num_blocks=self.num_blocks,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            flops=self.flops,
            block_weights=self.block_weights,
            min_waves_for_peak=EMB_MIN_WAVES_FOR_PEAK,
        )

    def wave_dst_bytes(self, concurrent_blocks: int) -> np.ndarray:
        """Per-wave destination byte matrix, ``(n_waves, n_devices)``.

        Wave *w* executes blocks ``[w*C, (w+1)*C)``; summing their
        ``block_dst_bytes`` rows gives the bytes that become sendable when
        that wave retires.
        """
        if concurrent_blocks <= 0:
            raise ValueError("concurrent_blocks must be positive")
        n_waves = math.ceil(self.num_blocks / concurrent_blocks) if self.num_blocks else 0
        out = np.zeros((n_waves, self.n_devices), dtype=np.float64)
        for w in range(n_waves):
            lo = w * concurrent_blocks
            hi = min(lo + concurrent_blocks, self.num_blocks)
            out[w] = self.block_dst_bytes[lo:hi].sum(axis=0)
        return out


def build_device_workloads(
    plan: TableWiseSharding,
    lengths_by_feature: Mapping[str, np.ndarray],
    *,
    samples_per_block: int = EMB_SAMPLES_PER_BLOCK,
) -> List[DeviceWorkload]:
    """Derive every device's :class:`DeviceWorkload` for one batch.

    ``lengths_by_feature`` maps each table name to its per-sample pooling
    factors (shape ``(B,)``); all features must agree on B.
    """
    missing = [t.name for t in plan.table_configs if t.name not in lengths_by_feature]
    if missing:
        raise KeyError(f"no lengths for features: {missing}")
    sizes = {np.asarray(l).shape[0] for l in lengths_by_feature.values()}
    if len(sizes) != 1:
        raise ValueError(f"inconsistent batch sizes in lengths: {sorted(sizes)}")
    B = sizes.pop()
    G = plan.n_devices
    if samples_per_block <= 0:
        raise ValueError("samples_per_block must be positive")

    # Grid geometry shared by all tables: chunks of contiguous samples.
    n_chunks = math.ceil(B / samples_per_block)
    owners = sample_owner(B, G)
    # chunk_dst_counts[c, g] = samples of chunk c owned by device g.
    chunk_dst_counts = np.zeros((n_chunks, G), dtype=np.int64)
    chunk_ids = np.arange(B) // samples_per_block
    np.add.at(chunk_dst_counts, (chunk_ids, owners), 1)

    workloads: List[DeviceWorkload] = []
    for dev in range(G):
        tables = plan.tables_on(dev)
        if not tables:
            workloads.append(
                DeviceWorkload(
                    device_id=dev,
                    n_devices=G,
                    batch_size=B,
                    row_bytes=plan.table_configs[0].row_bytes,
                    num_local_tables=0,
                    nnz=0,
                    num_blocks=0,
                    samples_per_block=samples_per_block,
                    block_weights=np.empty(0),
                    block_dst_bytes=np.zeros((0, G)),
                )
            )
            continue
        row_bytes = {t.row_bytes for t in tables}
        if len(row_bytes) != 1:
            raise ValueError("mixed embedding dims/dtypes on one device are unsupported")
        rb = row_bytes.pop()
        num_blocks = len(tables) * n_chunks
        # Per-block lookup counts: reduceat of each table's lengths over chunks.
        starts = np.arange(n_chunks) * samples_per_block
        weights = np.concatenate(
            [
                np.add.reduceat(
                    np.asarray(lengths_by_feature[t.name], dtype=np.int64), starts
                )
                for t in tables
            ]
        ).astype(np.float64)
        nnz = int(sum(int(np.sum(lengths_by_feature[t.name])) for t in tables))
        # Destination bytes: the chunk→device sample counts, tiled per table.
        block_dst = np.tile(chunk_dst_counts, (len(tables), 1)).astype(np.float64) * rb
        workloads.append(
            DeviceWorkload(
                device_id=dev,
                n_devices=G,
                batch_size=B,
                row_bytes=rb,
                num_local_tables=len(tables),
                nnz=nnz,
                num_blocks=num_blocks,
                samples_per_block=samples_per_block,
                block_weights=weights,
                block_dst_bytes=block_dst,
            )
        )
    return workloads


def table_segments(
    plan: TableWiseSharding, workloads: Sequence[DeviceWorkload]
) -> Dict[str, tuple]:
    """Lift each table's block segment out of its owner's workload.

    Table-wise workloads are a concatenation of per-table block segments
    (``n_chunks`` blocks per table, in the plan's global feature order), so
    each table's blocks can be recovered exactly.  Returns
    ``{table_name: (block_weights, block_dst_bytes, nnz)}`` — the raw
    material for re-homing tables under a different ownership (failover,
    migration cutover) without rebuilding from jagged lengths.
    """
    segments: Dict[str, tuple] = {}
    for wl in workloads:
        tables = plan.tables_on(wl.device_id)
        if not tables:
            continue
        n_chunks = math.ceil(wl.batch_size / wl.samples_per_block)
        for j, cfg in enumerate(tables):
            sl = slice(j * n_chunks, (j + 1) * n_chunks)
            weights = wl.block_weights[sl]
            segments[cfg.name] = (
                weights,
                wl.block_dst_bytes[sl],
                int(round(float(weights.sum()))),
            )
    return segments


def rehome_workloads(
    plan: TableWiseSharding,
    workloads: Sequence[DeviceWorkload],
    owners: Mapping[str, Optional[int]],
) -> List[DeviceWorkload]:
    """Rebuild per-device workloads under an explicit effective ownership.

    ``owners`` maps each table name to the device that should *serve* it
    for this batch (``None`` drops the table's lookups entirely — the
    replication layer uses that for tables with no live holder).
    Destination columns of ``block_dst_bytes`` are absolute device ids and
    need no adjustment, which is what re-derives the baseline's all-to-all
    splits and the PGAS put targets on the new owner for free.  Shared by
    replication failover and reshard migration cutover.
    """
    if not workloads:
        raise ValueError("rehome_workloads needs at least one workload")
    G = plan.n_devices
    segments = table_segments(plan, workloads)
    batch_size = workloads[0].batch_size
    spb = workloads[0].samples_per_block
    out: List[DeviceWorkload] = []
    for d in range(G):
        cfgs = [
            cfg
            for cfg in plan.table_configs
            if owners.get(cfg.name) == d and cfg.name in segments
        ]
        if not cfgs:
            out.append(
                DeviceWorkload(
                    device_id=d,
                    n_devices=G,
                    batch_size=batch_size,
                    row_bytes=plan.table_configs[0].row_bytes,
                    num_local_tables=0,
                    nnz=0,
                    num_blocks=0,
                    samples_per_block=spb,
                    block_weights=np.empty(0),
                    block_dst_bytes=np.zeros((0, G)),
                )
            )
            continue
        row_bytes = {cfg.row_bytes for cfg in cfgs}
        if len(row_bytes) != 1:
            raise ValueError(
                "re-homing would mix row byte sizes on one device; "
                "table re-homing needs tables of equal row_bytes"
            )
        weights = np.concatenate([segments[cfg.name][0] for cfg in cfgs])
        dst = np.concatenate([segments[cfg.name][1] for cfg in cfgs], axis=0)
        out.append(
            DeviceWorkload(
                device_id=d,
                n_devices=G,
                batch_size=batch_size,
                row_bytes=row_bytes.pop(),
                num_local_tables=len(cfgs),
                nnz=sum(segments[cfg.name][2] for cfg in cfgs),
                num_blocks=dst.shape[0],
                samples_per_block=spb,
                block_weights=weights,
                block_dst_bytes=dst,
            )
        )
    return out


def alltoall_split_bytes(workloads: Sequence[DeviceWorkload]) -> np.ndarray:
    """All-to-all byte matrix ``split[src, dst]`` for the baseline.

    Entry (s, d) is the size of src s's EMB output belonging to dst d's
    mini-batch.  The diagonal (local share) moves no wire bytes.
    """
    G = len(workloads)
    split = np.zeros((G, G), dtype=np.float64)
    for wl in workloads:
        split[wl.device_id] = wl.output_bytes_by_dst
    np.fill_diagonal(split, 0.0)
    return split


def unpack_bytes_received(workloads: Sequence[DeviceWorkload], device_id: int) -> float:
    """Bytes device ``device_id`` receives and must rearrange (baseline).

    The unpack pass reads each received block and writes it to its final
    position in the ``(B_g, F, d)`` tensor.
    """
    return float(
        sum(wl.output_bytes_by_dst[device_id] for wl in workloads if wl.device_id != device_id)
    )
