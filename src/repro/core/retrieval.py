"""High-level distributed embedding retrieval API.

:class:`DistributedEmbedding` is the user-facing entry point (the analogue
of the paper's PyTorch backend): configure tables, device count, and a
backend (``"pgas"`` or ``"baseline"``), then call :meth:`forward` with a
jagged batch.  It

* builds the table-wise sharding plan and registers every table's weights
  with the per-device memory accountants (so paper-scale configurations
  exercise the real 32 GB capacity wall);
* runs the **timed** path on the cluster simulator for every batch,
  accumulating a :class:`~repro.core.baseline.PhaseTiming`;
* optionally (``materialize=True``) holds real numpy weights and also runs
  the **functional** path, returning per-device output tensors that are
  bit-identical across backends.

Example
-------
>>> from repro import DistributedEmbedding, WorkloadConfig, SyntheticDataGenerator
>>> cfg = WorkloadConfig(num_tables=8, rows_per_table=1000, dim=16,
...                      batch_size=64, max_pooling=8)
>>> emb = DistributedEmbedding(cfg, n_devices=2, backend="pgas", materialize=True)
>>> batch = SyntheticDataGenerator(cfg).sparse_batch()
>>> result = emb.forward(batch)
>>> [o.shape for o in result.outputs]
[(32, 8, 16), (32, 8, 16)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Mapping, Optional, Sequence, Union

import numpy as np

from ..comm.collective import CollectiveSpec
from ..comm.pgas import PGASSpec
from ..dlrm.batch import SparseBatch
from ..dlrm.data import WorkloadConfig
from ..dlrm.embedding import EmbeddingBagCollection, EmbeddingTableConfig
from ..simgpu.cluster import Cluster, dgx_v100
from .baseline import BaselineRetrieval, PhaseTiming
from .functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from .pgas_retrieval import PGASFusedRetrieval
from .sharding import TableWiseSharding
from .workload import DeviceWorkload, build_device_workloads, lengths_from_batch

__all__ = ["BackendName", "ForwardResult", "DistributedEmbedding"]

BackendName = Literal["pgas", "baseline"]


@dataclass
class ForwardResult:
    """Outcome of one distributed EMB forward call.

    ``outputs`` is the per-device list of ``(B_g, F, d)`` tensors when the
    module is materialised, else ``None`` (timing-only run).
    """

    timing: PhaseTiming
    outputs: Optional[List[np.ndarray]] = None

    @property
    def total_ms(self) -> float:
        """Simulated wall time in milliseconds."""
        return self.timing.total_ns / 1e6


class DistributedEmbedding:
    """Multi-GPU embedding retrieval with a pluggable communication backend."""

    def __init__(
        self,
        tables: Union[WorkloadConfig, Sequence[EmbeddingTableConfig]],
        n_devices: int,
        *,
        backend: BackendName = "pgas",
        sharding_strategy: Literal["contiguous", "round_robin"] = "contiguous",
        cluster: Optional[Cluster] = None,
        materialize: bool = False,
        collective_spec: Optional[CollectiveSpec] = None,
        pgas_spec: Optional[PGASSpec] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if backend not in ("pgas", "baseline"):
            raise ValueError(f"unknown backend {backend!r}")
        if isinstance(tables, WorkloadConfig):
            table_configs = tables.table_configs()
        else:
            table_configs = list(tables)
        self.backend: BackendName = backend
        self.cluster = cluster or dgx_v100(n_devices)
        if self.cluster.n_devices != n_devices:
            raise ValueError(
                f"cluster has {self.cluster.n_devices} devices, asked for {n_devices}"
            )
        self.plan = TableWiseSharding(table_configs, n_devices, strategy=sharding_strategy)
        self.plan.validate()

        # Register weight storage with the per-device memory accountants.
        self._weight_buffers = []
        for dev in self.cluster.devices:
            for cfg in self.plan.tables_on(dev.id):
                self._weight_buffers.append(
                    dev.memory.alloc(
                        (cfg.num_rows, cfg.dim),
                        cfg.dtype,
                        materialize=False,
                        label=f"weights.{cfg.name}",
                    )
                )

        self._baseline = BaselineRetrieval(self.cluster, collective_spec)
        self._pgas = PGASFusedRetrieval(self.cluster, pgas_spec)

        self.sharded: Optional[ShardedEmbeddingTables] = None
        if materialize:
            ebc = EmbeddingBagCollection.from_configs(table_configs, rng=rng)
            self.sharded = ShardedEmbeddingTables.from_collection(ebc, self.plan)

    # -- properties -------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Device count."""
        return self.cluster.n_devices

    @property
    def materialized(self) -> bool:
        """Whether real weights (and functional outputs) are available."""
        return self.sharded is not None

    def memory_bytes(self, device_id: int) -> int:
        """Accounted embedding-weight bytes on one device."""
        return self.plan.memory_bytes(device_id)

    # -- forward ----------------------------------------------------------------

    def build_workloads(
        self, lengths_by_feature: Mapping[str, np.ndarray]
    ) -> List[DeviceWorkload]:
        """Derive the per-device simulator workloads for one batch."""
        return build_device_workloads(self.plan, lengths_by_feature)

    def forward(self, batch: SparseBatch, backend: Optional[BackendName] = None) -> ForwardResult:
        """Run one batch: timed always; functional when materialised.

        ``backend`` overrides the instance default for this call — handy
        for A/B comparisons on identical inputs.
        """
        be = backend or self.backend
        workloads = self.build_workloads(lengths_from_batch(batch))
        timing = self._run_timed(be, workloads)
        outputs: Optional[List[np.ndarray]] = None
        if self.sharded is not None:
            if be == "baseline":
                outputs, _blocks = baseline_functional_forward(self.sharded, batch)
            else:
                outputs = pgas_functional_forward(self.sharded, batch)
        return ForwardResult(timing=timing, outputs=outputs)

    def forward_timed(
        self,
        lengths_by_feature: Mapping[str, np.ndarray],
        backend: Optional[BackendName] = None,
    ) -> PhaseTiming:
        """Timing-only forward from pooling factors (paper-scale safe)."""
        workloads = self.build_workloads(lengths_by_feature)
        return self._run_timed(backend or self.backend, workloads)

    def _run_timed(self, be: BackendName, workloads: List[DeviceWorkload]) -> PhaseTiming:
        if be == "baseline":
            return self._baseline.run_batch(workloads)
        return self._pgas.run_batch(workloads)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DistributedEmbedding backend={self.backend} G={self.n_devices} "
            f"T={self.plan.num_tables} materialized={self.materialized}>"
        )
