"""High-level distributed embedding retrieval API and the backend registry.

:class:`DistributedEmbedding` is the user-facing entry point (the analogue
of the paper's PyTorch backend): configure tables, device count, and a
backend name, then call :meth:`forward` with a jagged batch.  It

* builds the table-wise sharding plan and registers every table's weights
  with the per-device memory accountants (so paper-scale configurations
  exercise the real 32 GB capacity wall);
* runs the **timed** path on the cluster simulator for every batch,
  accumulating a :class:`~repro.core.baseline.PhaseTiming`;
* optionally (``materialize=True``) holds real numpy weights and also runs
  the **functional** path, returning per-device output tensors that are
  bit-identical across backends.

Backends are *registered*, not hard-coded: ``"pgas"`` and ``"baseline"``
are built in here, and other packages add their own via
:func:`register_backend` (``repro.cache`` registers ``"pgas+cache"`` and
``"baseline+cache"``) without any call-site edits.  A backend is a factory
producing a :class:`RetrievalBackend` adapter bound to one
:class:`DistributedEmbedding`; adapters are created lazily per instance and
kept alive across batches (which is what lets stateful backends, like the
hot-row cache, stay warm between calls).

Backend-name contract
---------------------
A backend name is ``<base>`` or ``<base>+<feature>`` where ``<base>`` is a
communication strategy (``"pgas"`` — fused one-sided writes — or
``"baseline"`` — NCCL-style collectives) and ``<feature>`` is a wrapper
layered on top of it.  Consumers dispatch on the suffix:

* ``"+cache"`` marks a backend whose EMB pass consults the hot-row cache;
  it is configured by a :class:`repro.cache.CacheConfig` and *requires
  index values* (its cost depends on which rows hit).
* ``"+resilient"`` marks a backend wrapped in the fault-tolerant retry /
  reroute / degrade layer, configured by a
  :class:`repro.faults.ResilienceSpec`.
* ``"+compress"`` marks a backend whose remote payloads are quantised by
  a row codec before crossing the wire, configured by a
  :class:`repro.compress.CompressionSpec`.
* ``"+replicated"`` marks a backend with k-way shard replicas, heartbeat
  failure detection, failover routing, and online re-replication,
  configured by a :class:`repro.replication.ReplicationSpec`.
* ``"+reshard"`` marks a backend with the skew-aware online load
  balancer: observed per-table traffic drives background table
  migrations with serve-from-old-owner cutover, configured by a
  :class:`repro.reshard.ReshardSpec`.
* ``"+hier"`` marks a backend with topology-aware hierarchical routing:
  cross-node traffic stages intra-node to a leader and crosses the NIC
  as one coalesced stream per node pair, configured by a
  :class:`repro.comm.hier.HierSpec` (routing changes timing only —
  functional outputs stay bit-identical to the flat backend).
* A bare base name is the plain timed retrieval.

Code that needs the base strategy (e.g. to pick the functional forward)
takes ``name.split("+", 1)[0]``; code that needs a capability checks the
suffix — or, better, the :class:`BackendInfo` flags that
:func:`available_backends` returns.  Registering a name that is already
taken raises (pass ``overwrite=True`` to replace deliberately).

Stacking wrappers (two or more ``+<feature>`` suffixes, e.g.
``"pgas+compress+resilient"``) has no defined semantics unless someone
registers that composed backend explicitly: looking up an unregistered
composition raises a ``ValueError`` naming the unsupported combination
rather than silently picking one wrapper order.  The mechanical side of
the contract — parsing names, attaching feature wrappers, the canonical
composition order — lives in :mod:`repro.core.factory`; the feature
packages' registry entries are thin aliases over its
:func:`~repro.core.factory.build_adapter`.

Example
-------
>>> from repro import DistributedEmbedding, WorkloadConfig, SyntheticDataGenerator
>>> cfg = WorkloadConfig(num_tables=8, rows_per_table=1000, dim=16,
...                      batch_size=64, max_pooling=8)
>>> emb = DistributedEmbedding(cfg, n_devices=2, backend="pgas", materialize=True)
>>> batch = SyntheticDataGenerator(cfg).sparse_batch()
>>> result = emb.forward(batch)
>>> [o.shape for o in result.outputs]
[(32, 8, 16), (32, 8, 16)]
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Literal,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..comm.collective import CollectiveSpec
from ..comm.pgas import PGASSpec
from ..dlrm.batch import SparseBatch
from ..dlrm.data import WorkloadConfig
from ..dlrm.embedding import EmbeddingBagCollection, EmbeddingTableConfig
from ..simgpu.cluster import Cluster, dgx_v100
from ..simgpu.memory import Buffer
from .baseline import BaselineRetrieval, PhaseTiming
from .factory import FeatureSpec
from .functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from .pgas_retrieval import PGASFusedRetrieval
from .sharding import TableWiseSharding
from .workload import DeviceWorkload, build_device_workloads, lengths_from_batch

__all__ = [
    "BackendInfo",
    "BackendName",
    "BackendSpec",
    "DistributedEmbedding",
    "ForwardResult",
    "RetrievalBackend",
    "available_backends",
    "backend_spec",
    "register_backend",
]

#: A registered backend name.  ``"pgas"`` and ``"baseline"`` are built in;
#: ``repro.cache`` adds ``"pgas+cache"`` and ``"baseline+cache"``.
BackendName = str


class RetrievalBackend:
    """Adapter contract one registered backend implements.

    An adapter is bound to a single :class:`DistributedEmbedding` and lives
    as long as it does, so backends may keep cross-batch state (the hot-row
    cache relies on this).  ``requires_indices`` marks backends whose cost
    model depends on the actual index values, not just the jagged lengths —
    those cannot serve :meth:`DistributedEmbedding.forward_timed`.
    """

    requires_indices: bool = False

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch on the cluster; returns its phase timing."""
        raise NotImplementedError

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Numpy forward: per-device ``(B_g, F, d)`` output tensors."""
        raise NotImplementedError

    def forward(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch],
        functional: bool = False,
    ) -> Tuple[PhaseTiming, Optional[List[np.ndarray]]]:
        """Timed pass plus (when requested) the functional outputs.

        Backends that derive both from shared per-batch state override this
        to avoid doing that work twice.
        """
        timing = self.run_timed(workloads, batch=batch)
        outputs = self.functional_forward(batch) if functional and batch is not None else None
        return timing, outputs


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry: how to build a named backend's adapter."""

    name: str
    factory: Callable[["DistributedEmbedding"], RetrievalBackend]
    requires_indices: bool = False
    description: str = ""
    functional: bool = True  #: supports the materialised numpy forward
    traceable: bool = True  #: spans carry trace refs under an active TraceSpec


class BackendInfo(str):
    """A backend name annotated with its description and capability flags.

    A ``str`` subclass, so everything that treats backend names as strings
    (argparse ``choices``, ``", ".join(...)``, dict keys, equality against
    a plain name) keeps working; the extra attributes ride along for
    introspection (``repro backends``, docs, capability checks).
    """

    __slots__ = ("description", "requires_indices", "functional", "traceable")

    def __new__(cls, spec: BackendSpec) -> "BackendInfo":
        info = super().__new__(cls, spec.name)
        info.description = spec.description
        info.requires_indices = spec.requires_indices
        info.functional = spec.functional
        info.traceable = spec.traceable
        return info

    @property
    def base(self) -> str:
        """The communication strategy under any feature suffixes."""
        return self.split("+", 1)[0]

    @property
    def cached(self) -> bool:
        """True for ``"+cache"`` backends (hot-row cache in the EMB path)."""
        return "+cache" in self

    @property
    def resilient(self) -> bool:
        """True for ``"+resilient"`` backends (fault-tolerant wrapper)."""
        return "+resilient" in self

    @property
    def compressed(self) -> bool:
        """True for ``"+compress"`` backends (quantized wire payloads)."""
        return "+compress" in self

    @property
    def replicated(self) -> bool:
        """True for ``"+replicated"`` backends (shard replicas + failover)."""
        return "+replicated" in self

    @property
    def resharded(self) -> bool:
        """True for ``"+reshard"`` backends (skew-aware online migration)."""
        return "+reshard" in self

    @property
    def hierarchical(self) -> bool:
        """True for ``"+hier"`` backends (node-leader staged routing)."""
        return "+hier" in self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BackendInfo {str(self)!r}: {self.description}>"


_BACKENDS: Dict[str, BackendSpec] = {}


def register_backend(
    name: str,
    factory: Callable[["DistributedEmbedding"], RetrievalBackend],
    *,
    requires_indices: bool = False,
    description: str = "",
    functional: bool = True,
    traceable: bool = True,
    overwrite: bool = False,
) -> BackendSpec:
    """Register a retrieval backend under ``name``.

    ``factory(emb)`` must return a :class:`RetrievalBackend` bound to the
    given :class:`DistributedEmbedding`.  ``name`` must follow the
    backend-name contract (see the module docstring): a base strategy,
    optionally extended with ``+<feature>`` suffixes.  Registering an
    existing name raises unless ``overwrite=True`` — a loud duplicate
    beats two packages silently fighting over one name.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if any(not part for part in name.split("+")):
        raise ValueError(
            f"malformed backend name {name!r}: empty base or feature segment "
            f"(expected '<base>' or '<base>+<feature>[+<feature>...]')"
        )
    if name in _BACKENDS and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered "
            f"(by {_BACKENDS[name].factory!r}); pass overwrite=True to replace it"
        )
    spec = BackendSpec(
        name=name,
        factory=factory,
        requires_indices=requires_indices,
        description=description,
        functional=functional,
        traceable=traceable,
    )
    _BACKENDS[name] = spec
    return spec


def backend_spec(name: str) -> BackendSpec:
    """Look up a registered backend; unknown names raise ``ValueError``.

    Unregistered wrapper *compositions* (two or more ``+<feature>``
    suffixes) get a dedicated error naming the combination: stacking
    wrappers is undefined unless the composed backend was registered
    explicitly (wrapper order changes semantics, so the registry refuses
    to guess one).
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        pass
    features = name.split("+")[1:]
    if len(features) >= 2:
        raise ValueError(
            f"backend {name!r} is not registered: stacking the wrapper "
            f"features {' + '.join(features)} has no defined composition "
            f"order; register the composed backend explicitly with "
            f"register_backend() to support it"
        )
    raise ValueError(
        f"unknown backend {name!r}; available: {', '.join(available_backends())}"
    )


def available_backends() -> List[BackendInfo]:
    """Every registered backend, sorted by name.

    Each entry is a :class:`BackendInfo` — usable anywhere a plain name
    string is (the historical return type), but carrying the description
    and the ``cached`` / ``resilient`` / ``functional`` capability flags.
    """
    return [BackendInfo(_BACKENDS[name]) for name in sorted(_BACKENDS)]


@dataclass
class ForwardResult:
    """Outcome of one distributed EMB forward call.

    ``outputs`` is the per-device list of ``(B_g, F, d)`` tensors when the
    module is materialised, else ``None`` (timing-only run).
    """

    timing: PhaseTiming
    outputs: Optional[List[np.ndarray]] = None

    @property
    def total_ms(self) -> float:
        """Simulated wall time in milliseconds."""
        return self.timing.total_ns / 1e6


class _PGASBackend(RetrievalBackend):
    """Built-in adapter for the fused one-sided backend."""

    def __init__(self, emb: "DistributedEmbedding"):
        self._emb = emb
        self._engine = PGASFusedRetrieval(emb.cluster, emb.pgas_spec)

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Run the fused kernel simulation for one batch."""
        return self._engine.run_batch(workloads)

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """One-sided-path numpy forward."""
        assert self._emb.sharded is not None
        return pgas_functional_forward(self._emb.sharded, batch)


class _BaselineBackend(RetrievalBackend):
    """Built-in adapter for the NCCL-collective baseline."""

    def __init__(self, emb: "DistributedEmbedding"):
        self._emb = emb
        self._engine = BaselineRetrieval(emb.cluster, emb.collective_spec)

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Run the compute → all-to-all → unpack simulation for one batch."""
        return self._engine.run_batch(workloads)

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Collective-path numpy forward (send blocks + unpack)."""
        assert self._emb.sharded is not None
        outputs, _blocks = baseline_functional_forward(self._emb.sharded, batch)
        return outputs


register_backend(
    "pgas",
    _PGASBackend,
    description="fused one-sided PGAS-style writes (compute/comm overlapped)",
)
register_backend(
    "baseline",
    _BaselineBackend,
    description="NCCL-style collective: compute, all-to-all, unpack",
)


class DistributedEmbedding:
    """Multi-GPU embedding retrieval with a pluggable communication backend."""

    def __init__(
        self,
        tables: Union[WorkloadConfig, Sequence[EmbeddingTableConfig]],
        n_devices: int,
        *,
        backend: BackendName = "pgas",
        sharding_strategy: Literal["contiguous", "round_robin"] = "contiguous",
        cluster: Optional[Cluster] = None,
        materialize: bool = False,
        collective_spec: Optional[CollectiveSpec] = None,
        pgas_spec: Optional[PGASSpec] = None,
        features: Optional[FeatureSpec] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        """``features`` is the :class:`~repro.core.factory.FeatureSpec`
        bundling every per-feature config: ``cache`` for the ``"+cache"``
        backends, ``resilience`` for ``"+resilient"``, ``compression``
        for ``"+compress"``, ``replication`` for ``"+replicated"``,
        ``reshard`` for ``"+reshard"``, ``hier`` for ``"+hier"`` (each
        ignored by the other backends), and ``obs`` — a
        :class:`repro.obs.TraceSpec` enabling trace-context propagation
        for any backend (None or ``enabled=False`` keeps every backend
        bit-identical to an untraced run).  It is the only way to pass
        feature configs — the legacy per-feature keywords (``cache=``,
        ``resilience=``, ``compression=``, ``replication=``, ``obs=``)
        completed their deprecation cycle and were removed.

        For a ``"+hier"`` backend with a configured node geometry and no
        explicit ``cluster``, a matching multi-node cluster (NVLink
        within nodes, NIC across) is built automatically."""
        backend_spec(backend)  # unknown names raise here
        self.features: FeatureSpec = features or FeatureSpec()
        if self.features.obs is not None:
            from ..obs import TraceSpec

            if not isinstance(self.features.obs, TraceSpec):
                raise TypeError(
                    f"obs must be a repro.obs.TraceSpec, "
                    f"got {type(self.features.obs).__name__}"
                )
        if isinstance(tables, WorkloadConfig):
            table_configs = tables.table_configs()
        else:
            table_configs = list(tables)
        self.backend: BackendName = backend
        if cluster is None and "+hier" in backend and self.features.hier is not None:
            from ..comm.hier import HierSpec

            hier = self.features.hier
            if not isinstance(hier, HierSpec):
                raise TypeError(
                    f"hier must be a repro.comm.hier.HierSpec, "
                    f"got {type(hier).__name__}"
                )
            hier.validate_for(n_devices)
            if hier.devices_per_node > 1:
                from ..simgpu.cluster import multinode

                cluster = multinode(
                    n_devices // hier.devices_per_node, hier.devices_per_node
                )
        self.cluster = cluster or dgx_v100(n_devices)
        if self.cluster.n_devices != n_devices:
            raise ValueError(
                f"cluster has {self.cluster.n_devices} devices, asked for {n_devices}"
            )
        self.plan = TableWiseSharding(table_configs, n_devices, strategy=sharding_strategy)
        self.plan.validate()
        self.collective_spec = collective_spec
        self.pgas_spec = pgas_spec
        # Monotone batch counter for trace refs (one per traced forward).
        self._trace_seq = 0

        # Register weight storage with the per-device memory accountants.
        self._weight_buffers: Dict[str, Buffer] = {}
        for dev in self.cluster.devices:
            for cfg in self.plan.tables_on(dev.id):
                self._weight_buffers[cfg.name] = dev.memory.alloc(
                    (cfg.num_rows, cfg.dim),
                    cfg.dtype,
                    materialize=False,
                    label=f"weights.{cfg.name}",
                )

        self.sharded: Optional[ShardedEmbeddingTables] = None
        if materialize:
            ebc = EmbeddingBagCollection.from_configs(table_configs, rng=rng)
            self.sharded = ShardedEmbeddingTables.from_collection(ebc, self.plan)

        self._adapters: Dict[str, RetrievalBackend] = {}

    @classmethod
    def from_spec(cls, spec, **overrides) -> "DistributedEmbedding":
        """Build from a :class:`~repro.core.runspec.RunSpec`.

        ``overrides`` pass straight to the keyword constructor (e.g.
        ``backend=...`` for A/B runs or ``materialize=True`` for the
        functional path on the same spec).  Prefer
        :func:`repro.core.factory.build_backend`, which also pre-builds
        the adapter so composition errors surface immediately.
        """
        kwargs = dict(
            backend=spec.backend,
            features=FeatureSpec(
                cache=spec.cache,
                resilience=spec.resilience,
                compression=spec.compression,
                replication=spec.replication,
                reshard=spec.reshard,
                hier=spec.hier,
                obs=spec.obs,
            ),
        )
        kwargs.update(overrides)
        return cls(spec.workload, spec.n_devices, **kwargs)

    # -- properties -------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        """Device count."""
        return self.cluster.n_devices

    @property
    def cache_config(self) -> Optional[object]:
        """The ``features.cache`` section (legacy accessor, read-only)."""
        return self.features.cache

    @property
    def resilience_config(self) -> Optional[object]:
        """The ``features.resilience`` section (legacy accessor, read-only)."""
        return self.features.resilience

    @property
    def compression_config(self) -> Optional[object]:
        """The ``features.compression`` section (legacy accessor, read-only)."""
        return self.features.compression

    @property
    def replication_config(self) -> Optional[object]:
        """The ``features.replication`` section (legacy accessor, read-only)."""
        return self.features.replication

    @property
    def reshard_config(self) -> Optional[object]:
        """The ``features.reshard`` section."""
        return self.features.reshard

    @property
    def hier_config(self) -> Optional[object]:
        """The ``features.hier`` section."""
        return self.features.hier

    @property
    def obs_config(self) -> Optional[object]:
        """The ``features.obs`` section (legacy accessor, read-only)."""
        return self.features.obs

    def weight_buffer_map(self) -> Dict[str, Buffer]:
        """Live table-name → weight :class:`~repro.simgpu.memory.Buffer` map.

        The reshard executor mutates this map at migration cutover (frees
        the old owner's buffer, installs the destination's), so it always
        reflects where each table's weights are accounted *right now*.
        """
        return self._weight_buffers

    @property
    def materialized(self) -> bool:
        """Whether real weights (and functional outputs) are available."""
        return self.sharded is not None

    def memory_bytes(self, device_id: int) -> int:
        """Accounted embedding-weight bytes on one device."""
        return self.plan.memory_bytes(device_id)

    @property
    def cache(self) -> Optional[object]:
        """The instance backend's cache engine, if it has one (else None)."""
        adapter = self.backend_adapter(self.backend)
        return adapter if getattr(adapter, "caches", None) is not None else None

    # -- backend dispatch --------------------------------------------------------

    def backend_adapter(self, name: Optional[BackendName] = None) -> RetrievalBackend:
        """The (lazily created, then persistent) adapter for a backend."""
        be = name or self.backend
        adapter = self._adapters.get(be)
        if adapter is None:
            adapter = backend_spec(be).factory(self)
            self._adapters[be] = adapter
        return adapter

    # -- forward ----------------------------------------------------------------

    def _batch_trace_scope(self):
        """Context manager installing the next batch's trace ref (or a no-op).

        The entire synchronous ``cluster.run`` of one forward belongs to one
        batch, so scoping ``active_trace`` around the adapter call attributes
        every span the engine records — phase spans, kernel waves, link
        transfers — to that batch's :class:`~repro.simgpu.profiler.TraceRef`.
        """
        obs = self.obs_config
        if obs is None or not obs.enabled:
            return contextlib.nullcontext()
        from ..obs import trace_scope
        from ..simgpu.profiler import TraceRef

        ref = TraceRef(obs.trace_id, self._trace_seq)
        self._trace_seq += 1
        return trace_scope(self.cluster.profiler, ref)

    def build_workloads(
        self, lengths_by_feature: Mapping[str, np.ndarray]
    ) -> List[DeviceWorkload]:
        """Derive the per-device simulator workloads for one batch."""
        return build_device_workloads(self.plan, lengths_by_feature)

    def forward(self, batch: SparseBatch, backend: Optional[BackendName] = None) -> ForwardResult:
        """Run one batch: timed always; functional when materialised.

        ``backend`` overrides the instance default for this call — handy
        for A/B comparisons on identical inputs.
        """
        adapter = self.backend_adapter(backend)
        workloads = self.build_workloads(lengths_from_batch(batch))
        with self._batch_trace_scope():
            timing, outputs = adapter.forward(
                workloads, batch, functional=self.sharded is not None
            )
        return ForwardResult(timing=timing, outputs=outputs)

    def forward_timed(
        self,
        lengths_by_feature: Mapping[str, np.ndarray],
        backend: Optional[BackendName] = None,
    ) -> PhaseTiming:
        """Timing-only forward from pooling factors (paper-scale safe)."""
        be = backend or self.backend
        adapter = self.backend_adapter(be)
        if adapter.requires_indices:
            raise ValueError(
                f"backend {be!r} needs index values; use forward() with a SparseBatch"
            )
        workloads = self.build_workloads(lengths_by_feature)
        with self._batch_trace_scope():
            return adapter.run_timed(workloads)

    # -- telemetry --------------------------------------------------------------

    def telemetry_report(
        self,
        timing: Optional[PhaseTiming] = None,
        *,
        workload: Optional[WorkloadConfig] = None,
        **kwargs,
    ):
        """Full :class:`~repro.telemetry.RunReport` of the batches run so far.

        Derives gauges and metrics from the cluster's profiler record (so
        call it *after* the forward passes of interest; ``reset_profiler``
        between phases isolates them).  ``timing`` attaches an accumulated
        :class:`PhaseTiming`; extra ``kwargs`` pass to
        :func:`repro.telemetry.collect_run_report`.
        """
        from ..telemetry import collect_run_report

        return collect_run_report(
            self.cluster.profiler,
            backend=self.backend,
            n_devices=self.n_devices,
            workload=workload,
            timing=timing,
            topology=self.cluster.topology,
            **kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<DistributedEmbedding backend={self.backend} G={self.n_devices} "
            f"T={self.plan.num_tables} materialized={self.materialized}>"
        )
