"""Calibrated model constants, in one place.

Every number here is derived from the paper's own measurements (or from the
public spec of its DGX-1/V100 testbed), *not* tuned per figure — see
DESIGN.md §5.  The benchmarks regenerate the paper's tables and figures
from exactly these values; EXPERIMENTS.md records paper-vs-measured.

Derivations
-----------
``EMB_SAMPLES_PER_BLOCK`` — FBGEMM-style batched embedding kernels assign a
thread block a (table, contiguous-sample-chunk) tile; 64 samples/block with
the paper's batch of 16384 gives 256 chunks/table and, with 64 tables/GPU,
a ~26-wave launch on an 80-SM V100 — comfortably in the bandwidth-bound
regime the paper measures for weak scaling.

``EMB_MIN_WAVES_FOR_PEAK`` — the strong-scaling kernel (24 tables/GPU on
4 GPUs ⇒ ~10 waves) is measured by the paper as latency-limited: compute
time stops improving beyond 2 GPUs, with ncu showing 38%/57%
compute/memory throughput *at 2 GPUs* already.  24 waves reproduces that
flattening while leaving the ≥26-wave weak-scaling launches underated.

``NCCL_ALLTOALL_EFFICIENCY`` — from the baseline breakdown (Fig. 6): the
communication phase for ~134 MB/GPU is comparable to the ~30 ms compute
phase, i.e. PyTorch's ``all_to_all_single`` achieved ≈9 GB/s of the 48 GB/s
NVLink pair — 0.1875 of raw.  (One-sided writes bypass this machinery;
that asymmetry is the paper's thesis, not our assumption.)

``UNPACK_BANDWIDTH`` — from the growth of the "Sync + Unpack" component
with received volume (Figs. 6/9): ~0.11 ms per received MB ⇒ ≈18 GB/s
effective for the read+write rearrangement pass (many small strided copies
driven from Python, far below HBM peak).

``REMOTE_WRITE_KERNEL_DRAG`` — the slight PGAS runtime growth with GPU
count (Figs. 5/8): remote stores keep the kernel's store queues busier than
local ones; charging half the remote wire time to the issuing kernel
reproduces the few-percent slope.
"""

from __future__ import annotations

from ..simgpu.units import gbps

__all__ = [
    "EMB_SAMPLES_PER_BLOCK",
    "EMB_MIN_WAVES_FOR_PEAK",
    "NCCL_ALLTOALL_EFFICIENCY",
    "UNPACK_BANDWIDTH",
    "REMOTE_WRITE_KERNEL_DRAG",
    "INDEX_BYTES",
    "OFFSET_BYTES",
]

#: samples per thread block in the EMB retrieval kernel's grid
EMB_SAMPLES_PER_BLOCK = 64

#: waves needed for the gather kernel to reach roofline throughput
EMB_MIN_WAVES_FOR_PEAK = 24.0

#: achieved fraction of raw link bandwidth for NCCL-style collectives
NCCL_ALLTOALL_EFFICIENCY = 0.1875

#: effective bandwidth of the baseline's unpack/rearrangement pass
UNPACK_BANDWIDTH = gbps(18)

#: fraction of remote wire time charged to the issuing PGAS kernel
REMOTE_WRITE_KERNEL_DRAG = 0.5

#: bytes per sparse index (int64) read by the kernel
INDEX_BYTES = 8

#: bytes per offsets entry (int64)
OFFSET_BYTES = 8
