"""Row-wise sharded retrieval — the paper's §V "partitioning by rows".

Under :class:`~repro.core.sharding.RowWiseSharding` every device holds a
horizontal slice of *every* table (RecShard-style), so a single bag's
lookups scatter across devices and each device can only produce a
**partial pool** per (table, sample).  The partials must be summed and the
sums delivered to each sample's mini-batch owner — a strictly heavier
communication pattern than the paper's table-wise scheme:

* **baseline**: every device all-to-alls its full ``(B, T, d)`` partial
  tensor split by sample owner; each owner then *reduces* G partials and
  rearranges — the multi-step, multi-synchronisation pattern §V describes
  for gradients;
* **PGAS**: every device's partials leave per retiring wave as **remote
  atomic adds** directly into the owner's output tensor, which doubles as
  the reduction — no receive buffers, no reduction kernel, one quiet.

Functional versions compute real numbers from real table slices and are
checked against the single-device oracle (to float tolerance — the
reduction order necessarily differs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..comm.collective import CollectiveContext, CollectiveSpec
from ..comm.pgas import PGASContext, PGASSpec
from ..dlrm.batch import SparseBatch
from ..dlrm.embedding import EmbeddingBagCollection, segment_pool
from ..simgpu.cluster import Cluster
from ..simgpu.engine import ProcessGenerator
from ..simgpu.kernel import KernelSpec, WaveInfo, execute_kernel
from .baseline import PhaseTiming
from .calibration import (
    EMB_MIN_WAVES_FOR_PEAK,
    EMB_SAMPLES_PER_BLOCK,
    INDEX_BYTES,
    REMOTE_WRITE_KERNEL_DRAG,
    UNPACK_BANDWIDTH,
)
from .sharding import RowWiseSharding, minibatch_bounds, sample_owner

__all__ = [
    "RowWiseBaselineBackward",
    "RowWisePGASBackward",
    "rowwise_functional_forward_partials",
    "rowwise_baseline_functional_forward",
    "rowwise_pgas_functional_forward",
    "rowwise_functional_backward",
    "RowWiseWorkload",
    "build_rowwise_workloads",
    "RowWiseBaselineRetrieval",
    "RowWisePGASRetrieval",
]


# ---------------------------------------------------------------------------
# functional layer
# ---------------------------------------------------------------------------


def rowwise_functional_forward_partials(
    ebc: EmbeddingBagCollection,
    plan: RowWiseSharding,
    batch: SparseBatch,
    device_id: int,
) -> np.ndarray:
    """One device's partial pools over ALL tables: ``(B, T, d)``.

    Only the lookups whose hashed rows fall inside this device's row slice
    contribute; everything else pools as zero.
    """
    B = batch.batch_size
    T = ebc.num_features
    out = np.zeros((B, T, ebc.dim), dtype=ebc.tables[0].config.dtype)
    for f, table in enumerate(ebc.tables):
        field = batch.field(table.name)
        if field.nnz == 0:
            continue
        rows = table.hash(field.indices)
        shard = plan.shard_on(table.name, device_id)
        mask = (rows >= shard.row_lo) & (rows < shard.row_hi)
        vecs = np.zeros((field.nnz, ebc.dim), dtype=out.dtype)
        if mask.any():
            vecs[mask] = table.weights[rows[mask]]
        out[:, f, :] = segment_pool(vecs, field.offsets, table.config.pooling)
    return out


def _check_sum_pooling(ebc: EmbeddingBagCollection) -> None:
    bad = [t.name for t in ebc.tables if t.config.pooling != "sum"]
    if bad:
        raise NotImplementedError(
            f"row-wise sharding requires sum pooling (partials must add); "
            f"tables with other pooling: {bad}"
        )


def rowwise_baseline_functional_forward(
    ebc: EmbeddingBagCollection, plan: RowWiseSharding, batch: SparseBatch
) -> List[np.ndarray]:
    """Collective path: exchange partials, reduce at the owner.

    Returns per-device ``(B_g, T, d)`` outputs.
    """
    _check_sum_pooling(ebc)
    G = plan.n_devices
    bounds = minibatch_bounds(batch.batch_size, G)
    partials = [
        rowwise_functional_forward_partials(ebc, plan, batch, dev) for dev in range(G)
    ]
    outputs = []
    for dst, (lo, hi) in enumerate(bounds):
        # Receive one (B_g, T, d) chunk from every source, then reduce —
        # the explicit reduction step PGAS atomics eliminate.
        received = [partials[src][lo:hi] for src in range(G)]
        outputs.append(np.sum(received, axis=0, dtype=received[0].dtype))
    return outputs


def rowwise_pgas_functional_forward(
    ebc: EmbeddingBagCollection, plan: RowWiseSharding, batch: SparseBatch
) -> List[np.ndarray]:
    """One-sided path: partials atomically added into the owner's tensor."""
    _check_sum_pooling(ebc)
    G = plan.n_devices
    bounds = minibatch_bounds(batch.batch_size, G)
    outputs = [
        np.zeros((hi - lo, ebc.num_features, ebc.dim), dtype=ebc.tables[0].config.dtype)
        for lo, hi in bounds
    ]
    for src in range(G):
        partial = rowwise_functional_forward_partials(ebc, plan, batch, src)
        for dst, (lo, hi) in enumerate(bounds):
            # Remote (or local) atomic adds at the final coordinates.
            outputs[dst] += partial[lo:hi]
    return outputs


# ---------------------------------------------------------------------------
# timed layer
# ---------------------------------------------------------------------------


@dataclass
class RowWiseWorkload:
    """One device's byte accounting under row-wise sharding.

    Every device reads ~``nnz_total / G`` embedding rows (uniform hashing)
    but writes a partial for **every** (table, sample) pair — output volume
    is ``B × T × d`` per device, G× the table-wise case.
    """

    device_id: int
    n_devices: int
    batch_size: int
    num_tables: int
    row_bytes: int
    nnz_local: int
    nnz_scanned: int  #: indices examined (ownership test touches them all)
    num_blocks: int
    samples_per_block: int
    block_dst_bytes: np.ndarray  #: (num_blocks, G) partial-output bytes

    @property
    def bytes_read(self) -> float:
        """Local row gathers + the full index scan."""
        return (
            float(self.nnz_local) * self.row_bytes
            + float(self.nnz_scanned) * INDEX_BYTES
        )

    @property
    def bytes_written(self) -> float:
        """One partial vector per (table, sample)."""
        return float(self.batch_size * self.num_tables) * self.row_bytes

    @property
    def output_bytes_by_dst(self) -> np.ndarray:
        """Partial-output bytes destined to each owner."""
        return self.block_dst_bytes.sum(axis=0)

    @property
    def remote_output_bytes(self) -> float:
        """Partial bytes leaving this device."""
        out = self.output_bytes_by_dst
        return float(out.sum() - out[self.device_id])

    def kernel_spec(self, name: str) -> KernelSpec:
        """Simulator launch for this device's partial-pooling kernel."""
        return KernelSpec(
            name=f"{name}.dev{self.device_id}",
            num_blocks=self.num_blocks,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            flops=float(self.nnz_local) * (self.row_bytes / 4.0),
            min_waves_for_peak=EMB_MIN_WAVES_FOR_PEAK,
        )

    def wave_dst_bytes(self, concurrent_blocks: int) -> np.ndarray:
        """Per-wave owner byte matrix (as in the table-wise workload)."""
        if concurrent_blocks <= 0:
            raise ValueError("concurrent_blocks must be positive")
        n_waves = math.ceil(self.num_blocks / concurrent_blocks) if self.num_blocks else 0
        out = np.zeros((n_waves, self.n_devices))
        for w in range(n_waves):
            lo = w * concurrent_blocks
            hi = min(lo + concurrent_blocks, self.num_blocks)
            out[w] = self.block_dst_bytes[lo:hi].sum(axis=0)
        return out


def build_rowwise_workloads(
    plan: RowWiseSharding,
    lengths_by_feature: Mapping[str, np.ndarray],
    *,
    samples_per_block: int = EMB_SAMPLES_PER_BLOCK,
) -> List[RowWiseWorkload]:
    """Derive per-device row-wise workloads from pooling factors.

    Row ownership of a uniform-hashed lookup is uniform over devices, so
    each device's expected gather share is ``nnz / G`` (the functional
    layer uses the exact per-index ownership; byte-level timing only needs
    the expectation).
    """
    missing = [t.name for t in plan.table_configs if t.name not in lengths_by_feature]
    if missing:
        raise KeyError(f"no lengths for features: {missing}")
    sizes = {np.asarray(l).shape[0] for l in lengths_by_feature.values()}
    if len(sizes) != 1:
        raise ValueError(f"inconsistent batch sizes in lengths: {sorted(sizes)}")
    B = sizes.pop()
    G = plan.n_devices
    T = plan.num_tables
    rb = plan.table_configs[0].row_bytes
    nnz_total = int(sum(int(np.sum(l)) for l in lengths_by_feature.values()))

    n_chunks = math.ceil(B / samples_per_block)
    owners = sample_owner(B, G)
    chunk_dst_counts = np.zeros((n_chunks, G), dtype=np.int64)
    chunk_ids = np.arange(B) // samples_per_block
    np.add.at(chunk_dst_counts, (chunk_ids, owners), 1)
    # Every device runs the same grid: all T tables × all sample chunks.
    block_dst = np.tile(chunk_dst_counts, (T, 1)).astype(np.float64) * rb

    workloads = []
    base, rem = divmod(nnz_total, G)
    for dev in range(G):
        workloads.append(
            RowWiseWorkload(
                device_id=dev,
                n_devices=G,
                batch_size=B,
                num_tables=T,
                row_bytes=rb,
                nnz_local=base + (1 if dev < rem else 0),
                nnz_scanned=nnz_total,
                num_blocks=T * n_chunks,
                samples_per_block=samples_per_block,
                block_dst_bytes=block_dst,
            )
        )
    return workloads


class RowWiseBaselineRetrieval:
    """Timed collective path: partial kernel → a2a → reduce+rearrange."""

    def __init__(
        self,
        cluster: Cluster,
        collective_spec: Optional[CollectiveSpec] = None,
        unpack_bandwidth: float = UNPACK_BANDWIDTH,
    ):
        self.cluster = cluster
        self.collectives = CollectiveContext(cluster, collective_spec)
        self.unpack_bandwidth = unpack_bandwidth

    def run_batch(self, workloads: Sequence[RowWiseWorkload]) -> PhaseTiming:
        """Simulate one row-wise baseline forward pass."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(self, cluster, workloads, timing) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        coll = self.collectives
        t0 = engine.now

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
            k = wl.kernel_spec("rowwise_base_emb")
            ops.append(dev.default_stream.submit(
                lambda d=dev, ks=k: execute_kernel(d, ks), name=k.name))
        yield engine.all_of([op.done for op in ops])
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now

        # All-to-all of partials: split[src][dst] = B_dst * T * rb.
        split = np.zeros((G, G))
        for wl in workloads:
            split[wl.device_id] = wl.output_bytes_by_dst
        np.fill_diagonal(split, 0.0)
        handle = coll.all_to_all_single(split)
        yield from handle.wait()
        t2 = engine.now

        # Reduce G partials + rearrange: read G x (B_g, T, d), write one.
        if G > 1:
            ops = []
            for dev, wl in zip(cluster.devices, workloads):
                own = float(wl.output_bytes_by_dst[dev.id])
                to_touch = own * G + own  # G reads + 1 write per element
                ops.append(dev.default_stream.submit_delay(
                    dev.spec.kernel_launch_overhead_ns + to_touch / self.unpack_bandwidth,
                    name=f"reduce.dev{dev.id}",
                ))
            yield engine.all_of([op.done for op in ops])
            yield engine.timeout(spec0.sync_overhead_ns)
        t3 = engine.now

        control = coll.spec.launch_overhead_ns + coll.spec.wait_overhead_ns
        timing.compute_ns = t1 - t0
        timing.comm_ns = max(t2 - t1 - control, 0.0) if G > 1 else 0.0
        timing.sync_unpack_ns = (t3 - t2) + min(control, t2 - t1)
        timing.total_ns = t3 - t0


class RowWisePGASRetrieval:
    """Timed one-sided path: partial kernel with per-wave remote atomics."""

    def __init__(
        self,
        cluster: Cluster,
        pgas_spec: Optional[PGASSpec] = None,
        remote_write_drag: float = REMOTE_WRITE_KERNEL_DRAG,
    ):
        self.cluster = cluster
        self.pgas = PGASContext(cluster, pgas_spec)
        self.remote_write_drag = remote_write_drag

    def run_batch(self, workloads: Sequence[RowWiseWorkload]) -> PhaseTiming:
        """Simulate one row-wise PGAS forward pass."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(self, cluster, workloads, timing) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        t0 = engine.now

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            waves_dst = wl.wave_dst_bytes(dev.spec.concurrent_blocks)
            base = wl.kernel_spec("rowwise_pgas_emb")
            drag = 0.0
            if G > 1 and wl.remote_output_bytes > 0:
                peer = (dev.id + 1) % G
                bw = cluster.topology.link_spec(dev.id, peer).bandwidth
                spec = self.pgas.spec
                wire = wl.remote_output_bytes * (1 + spec.header_bytes / spec.message_bytes)
                drag = self.remote_write_drag * wire / bw
            kspec = KernelSpec(
                name=base.name, num_blocks=base.num_blocks,
                bytes_read=base.bytes_read, bytes_written=base.bytes_written,
                flops=base.flops, stretch_ns=drag,
                min_waves_for_peak=base.min_waves_for_peak,
            )

            def on_wave(info: WaveInfo, dev_id=dev.id, wdst=waves_dst) -> None:
                for dst in range(G):
                    if dst == dev_id:
                        continue
                    payload = float(wdst[info.index, dst])
                    if payload > 0:
                        self.pgas.put(dev_id, dst, payload)

            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
            ops.append(dev.default_stream.submit(
                lambda d=dev, ks=kspec, cb=on_wave: execute_kernel(d, ks, on_wave=cb),
                name=kspec.name))
        yield engine.all_of([op.done for op in ops])
        if G > 1:
            quiets = [engine.process(self.pgas.quiet(dev.id), name=f"quiet{dev.id}")
                      for dev in cluster.devices]
            yield engine.all_of(quiets)
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now
        timing.compute_ns = t1 - t0
        timing.total_ns = t1 - t0


# ---------------------------------------------------------------------------
# §V backward under row-wise sharding: the shift-rounds pattern
# ---------------------------------------------------------------------------


class RowWiseBaselineBackward:
    """Timed collective backward under row-wise sharding — §V verbatim.

    With rows spread over all devices, every device's mini-batch produces
    gradient contributions for rows on *every* device, and contributions to
    the same row from different devices must be summed.  The collective
    pattern the paper describes: "multiple rounds of collective calls,
    where embeddings are shifted to (received from) the next (previous)
    GPU ... This process necessitates multiple synchronizations to ensure
    all GPUs have consistent gradient information before shifting and
    finally updating the embeddings."

    We model exactly that: G-1 ring-shift rounds, each moving every
    device's foreign-gradient buffer one hop, followed by a local
    accumulate kernel and a barrier, then the final weight-update kernel.
    """

    def __init__(
        self,
        cluster: Cluster,
        collective_spec: Optional[CollectiveSpec] = None,
        accumulate_bandwidth: float = UNPACK_BANDWIDTH,
    ):
        self.cluster = cluster
        self.collectives = CollectiveContext(cluster, collective_spec)
        self.accumulate_bandwidth = accumulate_bandwidth

    def run_batch(self, workloads: Sequence[RowWiseWorkload]) -> PhaseTiming:
        """Simulate one row-wise backward pass; returns its phase timing."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(self, cluster, workloads, timing) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        coll = self.collectives
        t0 = engine.now

        # Local gradient-contribution kernel: each device walks its
        # mini-batch gradients for all tables (the partials, reversed).
        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            k = wl.kernel_spec("rowwise_bwd_contrib")
            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
            ops.append(dev.default_stream.submit(
                lambda d=dev, ks=k: execute_kernel(d, ks), name=k.name))
        yield engine.all_of([op.done for op in ops])
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now

        # G-1 shift rounds: each device forwards its foreign-gradient
        # buffer (its mini-batch's contributions to the next hop's rows;
        # per hop volume = B_g x T x d / G expected under uniform rows).
        comm_ns = 0.0
        sync_rounds_ns = 0.0
        for _round in range(G - 1):
            r0 = engine.now
            handle = coll.all_to_all_single(self._shift_split(workloads))
            yield from handle.wait()
            r1 = engine.now
            # local accumulate of the received slice + round barrier
            acc_ops = []
            for dev, wl in zip(cluster.devices, workloads):
                slice_bytes = wl.bytes_written / G
                acc_ops.append(dev.default_stream.submit_delay(
                    dev.spec.kernel_launch_overhead_ns
                    + 2.0 * slice_bytes / self.accumulate_bandwidth,
                    name=f"acc.dev{dev.id}",
                ))
            yield engine.all_of([op.done for op in acc_ops])
            yield engine.timeout(spec0.sync_overhead_ns)
            r2 = engine.now
            control = coll.spec.launch_overhead_ns + coll.spec.wait_overhead_ns
            comm_ns += max(r1 - r0 - control, 0.0)
            sync_rounds_ns += (r2 - r1) + min(control, r1 - r0)
        t2 = engine.now

        # Final weight update over the local row slices.
        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            rmw = 3.0 * float(wl.nnz_local) * wl.row_bytes
            k = KernelSpec(
                name=f"rowwise_bwd_update.dev{dev.id}",
                num_blocks=max(wl.num_blocks // max(G, 1), 1),
                bytes_read=rmw * 2 / 3,
                bytes_written=rmw / 3,
                min_waves_for_peak=EMB_MIN_WAVES_FOR_PEAK,
            )
            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
            ops.append(dev.default_stream.submit(
                lambda d=dev, ks=k: execute_kernel(d, ks), name=k.name))
        yield engine.all_of([op.done for op in ops])
        yield engine.timeout(spec0.sync_overhead_ns)
        t3 = engine.now

        timing.compute_ns = (t1 - t0) + (t3 - t2)
        timing.comm_ns = comm_ns
        timing.sync_unpack_ns = sync_rounds_ns
        timing.total_ns = t3 - t0

    @staticmethod
    def _shift_split(workloads: Sequence[RowWiseWorkload]) -> np.ndarray:
        """Ring-shift byte matrix: each device → next hop, 1/G of its grads."""
        G = workloads[0].n_devices
        split = np.zeros((G, G))
        for wl in workloads:
            split[wl.device_id, (wl.device_id + 1) % G] = wl.bytes_written / G
        return split


class RowWisePGASBackward:
    """Timed one-sided backward under row-wise sharding.

    The §V alternative: "replacing multiple rounds of collective calls
    with atomic PGAS direct-GPU remote writes".  One fused kernel per
    device; each wave's gradient contributions to remote row slices leave
    as remote atomic adds, owner-side accumulation rides the memory
    system, and a single quiet + rendezvous replaces the per-round
    synchronisations.
    """

    def __init__(
        self,
        cluster: Cluster,
        pgas_spec: Optional[PGASSpec] = None,
        remote_write_drag: float = REMOTE_WRITE_KERNEL_DRAG,
    ):
        self.cluster = cluster
        self.pgas = PGASContext(cluster, pgas_spec)
        self.remote_write_drag = remote_write_drag

    def run_batch(self, workloads: Sequence[RowWiseWorkload]) -> PhaseTiming:
        """Simulate one fused row-wise backward pass."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self._process(cl, workloads, timing))
        return timing

    def _process(self, cluster, workloads, timing) -> ProcessGenerator:
        engine = cluster.engine
        spec0 = cluster.devices[0].spec
        G = cluster.n_devices
        t0 = engine.now

        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            # Gradient bytes to each remote row-slice owner: uniform rows
            # ⇒ (G-1)/G of this device's gradient volume leaves, split
            # evenly across peers, spread over waves like the forward.
            remote_total = wl.bytes_written * (G - 1) / G if G > 1 else 0.0
            base = wl.kernel_spec("rowwise_pgas_bwd")
            drag = 0.0
            if G > 1 and remote_total > 0:
                peer = (dev.id + 1) % G
                bw = cluster.topology.link_spec(dev.id, peer).bandwidth
                spec = self.pgas.spec
                payload_per_atomic = spec.atomic_payload_bytes
                wire = remote_total * (1 + spec.header_bytes / max(payload_per_atomic, 1))
                drag = self.remote_write_drag * wire / bw
            kspec = KernelSpec(
                name=base.name, num_blocks=base.num_blocks,
                bytes_read=base.bytes_read, bytes_written=base.bytes_written,
                flops=base.flops, stretch_ns=drag,
                min_waves_for_peak=base.min_waves_for_peak,
            )
            n_waves = max(
                math.ceil(kspec.num_blocks / dev.spec.concurrent_blocks), 1
            )
            per_wave_per_peer = (
                remote_total / n_waves / max(G - 1, 1) if G > 1 else 0.0
            )

            def on_wave(info: WaveInfo, dev_id=dev.id, per_peer=per_wave_per_peer) -> None:
                if per_peer <= 0:
                    return
                for dst in range(G):
                    if dst == dev_id:
                        continue
                    n_elems = int(round(per_peer / self.pgas.spec.atomic_payload_bytes))
                    if n_elems > 0:
                        self.pgas.atomic_add(dev_id, dst, n_elems)

            dev.default_stream.submit_delay(dev.spec.kernel_launch_overhead_ns, "launch")
            ops.append(dev.default_stream.submit(
                lambda d=dev, ks=kspec, cb=on_wave: execute_kernel(d, ks, on_wave=cb),
                name=kspec.name))
        yield engine.all_of([op.done for op in ops])
        if G > 1:
            quiets = [engine.process(self.pgas.quiet(dev.id), name=f"quiet{dev.id}")
                      for dev in cluster.devices]
            yield engine.all_of(quiets)
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now
        timing.compute_ns = t1 - t0
        timing.total_ns = t1 - t0


# ---------------------------------------------------------------------------
# functional backward under row-wise sharding
# ---------------------------------------------------------------------------


def rowwise_functional_backward(
    ebc: EmbeddingBagCollection,
    plan: RowWiseSharding,
    batch: SparseBatch,
    grad_outputs: Sequence[np.ndarray],
    lr: float = 1.0,
) -> None:
    """Apply EMB gradients under row-wise sharding (functional).

    ``grad_outputs[g]`` is device g's ``(B_g, T, d)`` upstream gradient.
    Every device applies, to its own row slice, the contributions arriving
    from every mini-batch — the aggregation the timed schemes realise with
    shift rounds (baseline) or remote atomics (PGAS).  Equivalent to the
    single-device reference up to accumulation order.
    """
    from .backward import table_row_gradients

    G = plan.n_devices
    bounds = minibatch_bounds(batch.batch_size, G)
    if len(grad_outputs) != G:
        raise ValueError(f"need {G} per-device gradients, got {len(grad_outputs)}")
    for f, table in enumerate(ebc.tables):
        field = batch.field(table.name)
        for g, (lo, hi) in enumerate(bounds):
            sub = field.slice_samples(lo, hi)
            rows, grads = table_row_gradients(
                table, sub, np.asarray(grad_outputs[g])[:, f, :]
            )
            if rows.size == 0:
                continue
            # Each row's update lands on its owning slice — ownership is a
            # partition, so applying per (device, slice) covers each
            # contribution exactly once.
            owners = plan.row_owner(table.name, rows)
            for dev in range(G):
                mask = owners == dev
                if mask.any():
                    table.apply_row_gradients(rows[mask], grads[mask], lr=lr)
