"""The NCCL-collective baseline retrieval (timed path).

Faithful to the paper's baseline (§IV): an ``EmbeddingBagCollection``
forward CUDA kernel per device, a device synchronisation, one
``all_to_all_single(async_op=True)`` collective, its ``wait()``, and then
the unpack/rearrangement of the received chunks into the final
data-parallel tensor.  "On each GPU, communication does not start until
the embedding table forward CUDA kernel finishes."

Phase accounting follows the paper's own measurement method (§IV-A2a):

* **compute** — the distinct computation phase (kernel launch → all devices'
  kernels done).
* **comm** — the pure transfer window of the collective (what remains after
  subtracting control-path costs, as the paper does with its
  single-float-message trick).
* **sync_unpack** — everything else: collective control path, ``wait()``,
  stream synchronisations, and the unpack pass over the received bytes.

Each phase is also recorded as profiler spans (categories ``"compute"``,
``"comm"``, ``"sync_unpack"``) and the comm counter is stamped by the
chunked transfers, producing the baseline curves of Figs. 6/7/9/10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..comm.hier import HierSpec

from ..comm.collective import CollectiveContext, CollectiveSpec
from ..simgpu.cluster import Cluster
from ..simgpu.engine import ProcessGenerator
from ..simgpu.kernel import execute_kernel
from .calibration import UNPACK_BANDWIDTH
from .workload import DeviceWorkload, alltoall_split_bytes, unpack_bytes_received

__all__ = ["PhaseTiming", "BaselineRetrieval"]


@dataclass
class PhaseTiming:
    """Wall-clock phase breakdown of one (or many accumulated) batches."""

    compute_ns: float = 0.0
    comm_ns: float = 0.0
    sync_unpack_ns: float = 0.0
    total_ns: float = 0.0
    batches: int = 0

    def add(self, other: "PhaseTiming") -> None:
        """Accumulate another batch's phases (the 100-batch loop)."""
        self.compute_ns += other.compute_ns
        self.comm_ns += other.comm_ns
        self.sync_unpack_ns += other.sync_unpack_ns
        self.total_ns += other.total_ns
        self.batches += other.batches

    @property
    def overhead_ns(self) -> float:
        """Total minus the three named phases (should be ~0 for baseline)."""
        return self.total_ns - self.compute_ns - self.comm_ns - self.sync_unpack_ns

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting."""
        return {
            "compute_ns": self.compute_ns,
            "comm_ns": self.comm_ns,
            "sync_unpack_ns": self.sync_unpack_ns,
            "total_ns": self.total_ns,
            "batches": float(self.batches),
        }


class BaselineRetrieval:
    """Timed EMB forward using collective communication (the baseline).

    With ``hier_spec`` set (and active for this device count), the
    all-to-all runs through the two-level
    :class:`~repro.comm.hier.TwoLevelAllToAll` — intra-node gather to a
    node leader, one coalesced NIC transfer per ordered node pair, scatter
    on the far side.  An inactive spec (``devices_per_node == 1`` or a
    single node) leaves the flat collective in place, event-identical.
    """

    def __init__(
        self,
        cluster: Cluster,
        collective_spec: Optional[CollectiveSpec] = None,
        unpack_bandwidth: float = UNPACK_BANDWIDTH,
        hier_spec: Optional["HierSpec"] = None,
    ):
        if unpack_bandwidth <= 0:
            raise ValueError("unpack_bandwidth must be positive")
        self.cluster = cluster
        self.collectives = CollectiveContext(cluster, collective_spec)
        self.unpack_bandwidth = unpack_bandwidth
        self._hier = None
        if hier_spec is not None:
            hier_spec.validate_for(cluster.n_devices)
            if hier_spec.active(cluster.n_devices):
                from ..comm.hier import TwoLevelAllToAll

                self._hier = TwoLevelAllToAll(
                    cluster, self.collectives.spec, hier_spec
                )

    # -- single batch -----------------------------------------------------------

    def run_batch(self, workloads: Sequence[DeviceWorkload]) -> PhaseTiming:
        """Simulate one EMB forward + layout conversion; returns its phases."""
        self._check(workloads)
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def run_batches(self, workloads_iter) -> PhaseTiming:
        """Accumulate phases over an iterable of per-batch workload lists."""
        total = PhaseTiming()
        for workloads in workloads_iter:
            total.add(self.run_batch(workloads))
        return total

    # -- internals ----------------------------------------------------------------

    def _check(self, workloads: Sequence[DeviceWorkload]) -> None:
        if len(workloads) != self.cluster.n_devices:
            raise ValueError(
                f"got {len(workloads)} workloads for {self.cluster.n_devices} devices"
            )
        for i, wl in enumerate(workloads):
            if wl.device_id != i:
                raise ValueError(f"workload {i} has device_id {wl.device_id}")

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ) -> ProcessGenerator:
        """Process generator for one batch — composable into larger host
        programs (e.g. the full-pipeline simulation overlaps this with the
        dense MLP, as in the paper's Fig. 4).  ``timing`` is filled in at
        completion.  ``stream_suffix`` selects a per-batch stream set so
        concurrent batches (continuous-batching serving) don't serialise
        on one FIFO queue; the default empty suffix is the classic
        ``"default"`` stream."""
        engine = cluster.engine
        prof = cluster.profiler
        spec0 = cluster.devices[0].spec
        coll_spec = self.collectives.spec
        G = cluster.n_devices
        t0 = engine.now

        # ---- Phase 1: computation ------------------------------------------------
        ops = []
        for dev, wl in zip(cluster.devices, workloads):
            kspec = wl.kernel_spec("baseline_emb")
            stream = dev.stream("default" + stream_suffix)
            stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(stream.submit(lambda d=dev, k=kspec: execute_kernel(d, k), name=kspec.name))
        yield engine.all_of([op.done for op in ops])
        # Host observes completion via a device sync before the collective.
        yield engine.timeout(spec0.sync_overhead_ns)
        t1 = engine.now
        for dev, op in zip(cluster.devices, ops):
            prof.record_span(f"compute.dev{dev.id}", "compute", dev.id, t0, t1)

        # ---- Phase 2: all-to-all ---------------------------------------------------
        split = alltoall_split_bytes(workloads)
        if self._hier is not None:
            handle = self._hier.all_to_all_single(split)
        else:
            handle = self.collectives.all_to_all_single(split)
        yield from handle.wait()
        t2 = engine.now
        # Pure transfer window, paper-style: subtract control path + wait.
        control_ns = coll_spec.launch_overhead_ns + coll_spec.wait_overhead_ns
        comm_ns = max(t2 - t1 - control_ns, 0.0) if G > 1 else 0.0
        prof.record_span("alltoall", "comm", -1, t1 + coll_spec.launch_overhead_ns, t2 - coll_spec.wait_overhead_ns if G > 1 else t1 + coll_spec.launch_overhead_ns)

        # ---- Phase 3: unpack + syncs -------------------------------------------------
        if G > 1:
            unpack_ops = []
            for dev in cluster.devices:
                received = unpack_bytes_received(workloads, dev.id)
                # Read each received byte and write it to its final slot.
                unpack_ns = 2.0 * received / self.unpack_bandwidth
                stream = dev.stream("default" + stream_suffix)
                unpack_ops.append(
                    stream.submit_delay(
                        dev.spec.kernel_launch_overhead_ns + unpack_ns,
                        name=f"unpack.dev{dev.id}",
                    )
                )
            yield engine.all_of([op.done for op in unpack_ops])
            yield engine.timeout(spec0.sync_overhead_ns)
        t3 = engine.now
        prof.record_span("sync_unpack", "sync_unpack", -1, t2, t3)

        timing.compute_ns = t1 - t0
        timing.comm_ns = comm_ns
        timing.sync_unpack_ns = (t3 - t2) + (control_ns if G > 1 else t2 - t1)
        timing.total_ns = t3 - t0
