"""Timed end-to-end DLRM inference pipeline (paper Figs. 1 & 4).

Simulates the full per-batch flow the paper's experiments run around the
EMB layer:

1. **input staging** — the CPU-partitioned inputs are copied to each GPU
   over the host link: the dense *mini-batch* plus the *full batch* of the
   device's local sparse features (paper Fig. 4);
2. **dense path ∥ EMB path** — the bottom MLP over the dense mini-batch
   runs *concurrently* with the distributed EMB retrieval ("the top MLP
   and EMB retrieval run concurrently", Fig. 4), each on its own stream;
3. **interaction + top MLP** — once both embeddings exist, every device
   runs the (data-parallel) interaction and prediction kernels on its
   mini-batch;
4. device synchronisation.

The EMB step is the pluggable part: either retrieval backend's
``batch_process`` composes here unchanged, so the pipeline quantifies what
the paper's EMB-layer speedups mean for whole-model latency (Amdahl).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Mapping, Optional, Sequence

import numpy as np

from ..comm.collective import CollectiveSpec
from ..comm.pgas import PGASSpec
from ..dlrm.batch import SparseBatch
from ..dlrm.data import WorkloadConfig
from ..dlrm.interaction import interaction_output_dim
from ..obs import traced, trace_scope
from ..simgpu.cluster import Cluster, dgx_v100
from ..simgpu.engine import ProcessGenerator
from ..simgpu.kernel import KernelSpec, execute_kernel
from ..simgpu.profiler import TraceRef
from ..simgpu.units import gbps
from .baseline import BaselineRetrieval, PhaseTiming
from .calibration import INDEX_BYTES, OFFSET_BYTES
from .pgas_retrieval import PGASFusedRetrieval
from .retrieval import BackendName, backend_spec
from .sharding import TableWiseSharding, minibatch_bounds
from .workload import DeviceWorkload, build_device_workloads, lengths_from_batch

__all__ = ["PipelineConfig", "PipelineTiming", "DLRMInferencePipeline", "H2D_BANDWIDTH"]

#: host-to-device staging bandwidth (PCIe 3.0 x16 effective)
H2D_BANDWIDTH = gbps(12)


@dataclass(frozen=True)
class PipelineConfig:
    """Model shape around the EMB layer."""

    workload: WorkloadConfig
    bottom_mlp: Sequence[int] = (512, 256)
    top_mlp: Sequence[int] = (512, 256)
    interaction: Literal["dot", "cat", "sum"] = "dot"

    def mlp_flops_per_sample(self, sizes: Sequence[int]) -> int:
        """2 × Σ in×out multiply-adds along a layer stack."""
        total = 0
        for a, b in zip(sizes, sizes[1:]):
            total += 2 * a * b
        return total

    @property
    def bottom_sizes(self) -> List[int]:
        """Bottom MLP layer widths, dense features → embedding dim."""
        return [self.workload.num_dense_features, *self.bottom_mlp, self.workload.dim]

    @property
    def top_sizes(self) -> List[int]:
        """Top MLP layer widths, interaction output → 1 logit."""
        inter = interaction_output_dim(
            self.workload.num_tables, self.workload.dim, self.interaction
        )
        return [inter, *self.top_mlp, 1]


@dataclass
class PipelineTiming:
    """Per-stage wall times of one (or many accumulated) pipeline batches.

    ``overlap_saved_ns`` is the time the Fig.-4 concurrency bought:
    (dense stage + EMB stage) − max-of-the-two, summed over batches.
    """

    input_copy_ns: float = 0.0
    dense_mlp_ns: float = 0.0
    emb: PhaseTiming = field(default_factory=PhaseTiming)
    interaction_top_ns: float = 0.0
    overlap_saved_ns: float = 0.0
    total_ns: float = 0.0
    batches: int = 0

    def add(self, other: "PipelineTiming") -> None:
        """Accumulate another batch."""
        self.input_copy_ns += other.input_copy_ns
        self.dense_mlp_ns += other.dense_mlp_ns
        self.emb.add(other.emb)
        self.interaction_top_ns += other.interaction_top_ns
        self.overlap_saved_ns += other.overlap_saved_ns
        self.total_ns += other.total_ns
        self.batches += other.batches

    @property
    def emb_fraction(self) -> float:
        """Share of total pipeline time spent in the EMB stage (Amdahl)."""
        if self.total_ns <= 0:
            return 0.0
        exposed_emb = max(self.emb.total_ns - self.dense_mlp_ns, 0.0)
        return exposed_emb / self.total_ns

    def as_dict(self) -> Dict[str, float]:
        """Flat plain-dict view (EMB phases nested under ``emb.`` keys)."""
        out: Dict[str, float] = {
            "input_copy_ns": self.input_copy_ns,
            "dense_mlp_ns": self.dense_mlp_ns,
            "interaction_top_ns": self.interaction_top_ns,
            "overlap_saved_ns": self.overlap_saved_ns,
            "total_ns": self.total_ns,
            "batches": float(self.batches),
        }
        for key, value in self.emb.as_dict().items():
            out[f"emb.{key}"] = value
        return out


class DLRMInferencePipeline:
    """Full-model timed inference with a pluggable EMB backend."""

    def __init__(
        self,
        config: PipelineConfig,
        n_devices: int,
        *,
        backend: BackendName = "pgas",
        cluster: Optional[Cluster] = None,
        collective_spec: Optional[CollectiveSpec] = None,
        pgas_spec: Optional[PGASSpec] = None,
        h2d_bandwidth: float = H2D_BANDWIDTH,
        overlap_input_staging: bool = False,
        staging_chunks: int = 8,
        cache: Optional[object] = None,
        resilience: Optional[object] = None,
        obs: Optional[object] = None,
    ):
        """``overlap_input_staging`` enables the paper's §V input-pipelining
        proposal: instead of waiting for the whole CPU-partitioned input to
        land before launching kernels ("merge the sparse input partitioning
        into the computation kernel, allowing computation to start
        immediately when the corresponding sparse input is picked out"),
        the copy is cut into ``staging_chunks`` pieces and the compute
        paths start after the first chunk, overlapping the rest.
        ``cache`` is a :class:`repro.cache.CacheConfig` consumed by the
        ``"+cache"`` backends; ``resilience`` is a
        :class:`repro.faults.ResilienceSpec` consumed by the
        ``"+resilient"`` backends; ``obs`` is a
        :class:`repro.obs.TraceSpec` enabling per-batch trace context
        (None or disabled keeps runs bit-identical to untraced ones)."""
        backend_spec(backend)  # unknown names raise here
        if obs is not None:
            from ..obs import TraceSpec

            if not isinstance(obs, TraceSpec):
                raise TypeError(f"obs must be a repro.obs.TraceSpec, got {type(obs).__name__}")
        if h2d_bandwidth <= 0:
            raise ValueError("h2d_bandwidth must be positive")
        if staging_chunks <= 0:
            raise ValueError("staging_chunks must be positive")
        self.config = config
        self.backend: BackendName = backend
        self.cluster = cluster or dgx_v100(n_devices)
        if self.cluster.n_devices != n_devices:
            raise ValueError(
                f"cluster has {self.cluster.n_devices} devices, asked for {n_devices}"
            )
        self.plan = TableWiseSharding(config.workload.table_configs(), n_devices)
        self.h2d_bandwidth = h2d_bandwidth
        self.overlap_input_staging = overlap_input_staging
        self.staging_chunks = staging_chunks
        self.collective_spec = collective_spec
        self.pgas_spec = pgas_spec
        self.cache_config = cache
        self.resilience_config = resilience
        self.obs_config = obs
        # Monotone batch counter for trace refs (one per traced batch).
        self._trace_seq = 0
        self._baseline = BaselineRetrieval(self.cluster, collective_spec)
        self._pgas = PGASFusedRetrieval(self.cluster, pgas_spec)
        self._cached: Dict[str, object] = {}
        self._resilient: Dict[str, object] = {}

    @classmethod
    def from_spec(cls, spec, *, cluster: Optional[Cluster] = None, **overrides):
        """Build a pipeline from a :class:`~repro.core.runspec.RunSpec`.

        ``overrides`` pass straight to the keyword constructor (e.g. a
        different ``backend`` for A/B runs on the same spec).
        """
        kwargs = dict(
            backend=spec.backend,
            cluster=cluster,
            cache=spec.cache,
            resilience=spec.resilience,
            obs=spec.obs,
        )
        kwargs.update(overrides)
        return cls(spec.pipeline_config(), spec.n_devices, **kwargs)

    # -- cached EMB engines -------------------------------------------------------

    def set_cache_config(self, cache: Optional[object]) -> None:
        """Swap the cache config; existing cache engines are released."""
        for engine in self._cached.values():
            engine.release()
        self._cached.clear()
        self.cache_config = cache

    def _cached_retrieval(self, backend: BackendName):
        """The persistent cached EMB engine for a ``"+cache"`` backend."""
        engine = self._cached.get(backend)
        if engine is None:
            from ..cache import CacheConfig, CachedRetrieval  # lazy: avoid cycle

            if not backend.endswith("+cache"):
                raise ValueError(f"backend {backend!r} is not a cached backend")
            base = backend[: -len("+cache")]
            engine = CachedRetrieval(
                self.cluster,
                self.plan,
                self.cache_config or CacheConfig(),
                base=base,
                collective_spec=self.collective_spec,
                pgas_spec=self.pgas_spec,
            )
            self._cached[backend] = engine
        return engine

    # -- resilient EMB engines ----------------------------------------------------

    def set_resilience(self, resilience: Optional[object]) -> None:
        """Swap the resilience spec; existing resilient engines are dropped."""
        for engine in self._resilient.values():
            engine.release()
        self._resilient.clear()
        self.resilience_config = resilience

    def _resilient_retrieval(self, backend: BackendName):
        """The persistent resilient EMB engine for a ``"+resilient"`` backend."""
        engine = self._resilient.get(backend)
        if engine is None:
            from ..faults import ResilienceSpec, ResilientRetrieval  # lazy: avoid cycle

            if not backend.endswith("+resilient"):
                raise ValueError(f"backend {backend!r} is not a resilient backend")
            base = backend[: -len("+resilient")]
            engine = ResilientRetrieval(
                self.cluster,
                self.plan,
                self.resilience_config or ResilienceSpec(),
                base=base,
                collective_spec=self.collective_spec,
                pgas_spec=self.pgas_spec,
            )
            self._resilient[backend] = engine
        return engine

    def pop_resilient_outcome(self, backend: Optional[BackendName] = None):
        """The last batch's :class:`~repro.faults.BatchOutcome`, consumed.

        ``None`` when the backend is not resilient or no batch ran since
        the previous pop."""
        be = backend or self.backend
        engine = self._resilient.get(be)
        if engine is None:
            return None
        return engine.pop_outcome()

    # -- cost helpers -----------------------------------------------------------

    def _input_bytes(self, dev_id: int, workloads: Sequence[DeviceWorkload]) -> float:
        """Staged bytes: dense mini-batch + local features' full batch."""
        cfg = self.config.workload
        G = self.cluster.n_devices
        lo, hi = minibatch_bounds(cfg.batch_size, G)[dev_id]
        dense = (hi - lo) * cfg.num_dense_features * 4.0
        wl = workloads[dev_id]
        sparse = wl.nnz * INDEX_BYTES + (
            cfg.batch_size * wl.num_local_tables + 1
        ) * OFFSET_BYTES
        return dense + sparse

    def _mlp_kernel(self, name: str, dev_id: int, sizes: Sequence[int]) -> KernelSpec:
        """Data-parallel MLP launch over this device's mini-batch."""
        cfg = self.config.workload
        G = self.cluster.n_devices
        lo, hi = minibatch_bounds(cfg.batch_size, G)[dev_id]
        B_g = hi - lo
        flops = float(B_g) * self.config.mlp_flops_per_sample(sizes)
        weight_bytes = 4.0 * sum(a * b + b for a, b in zip(sizes, sizes[1:]))
        act_bytes = 4.0 * B_g * sum(sizes)
        return KernelSpec(
            name=f"{name}.dev{dev_id}",
            num_blocks=max(B_g // 32, 1) * max(len(sizes) - 1, 1),
            bytes_read=weight_bytes + act_bytes,
            bytes_written=4.0 * B_g * sizes[-1],
            flops=flops,
        )

    def _interaction_kernel(self, dev_id: int) -> KernelSpec:
        """Interaction: pairwise dots / concat over the mini-batch."""
        cfg = self.config.workload
        G = self.cluster.n_devices
        lo, hi = minibatch_bounds(cfg.batch_size, G)[dev_id]
        B_g = hi - lo
        F1 = cfg.num_tables + 1
        in_bytes = 4.0 * B_g * F1 * cfg.dim
        out_dim = interaction_output_dim(cfg.num_tables, cfg.dim, self.config.interaction)
        flops = float(B_g) * (F1 * F1 * cfg.dim if self.config.interaction == "dot" else 0)
        return KernelSpec(
            name=f"interaction.dev{dev_id}",
            num_blocks=max(B_g // 32, 1),
            bytes_read=in_bytes,
            bytes_written=4.0 * B_g * out_dim,
            flops=flops,
        )

    # -- running ----------------------------------------------------------------

    def _next_trace_ref(self) -> Optional[TraceRef]:
        """The next batch's trace ref, or None when tracing is off."""
        obs = self.obs_config
        if obs is None or not obs.enabled:
            return None
        ref = TraceRef(obs.trace_id, self._trace_seq)
        self._trace_seq += 1
        return ref

    def _plan_emb(
        self,
        lengths_by_feature: Optional[Mapping[str, np.ndarray]],
        backend: BackendName,
        batch: Optional[SparseBatch],
    ):
        """Resolve one batch's (staging workloads, cached plan or None).

        Cached backends need the actual index values (``batch``); their
        cache pass runs here — once — and the input staging still accounts
        the full uncached indices (the cache lives on-device, the host
        ships everything).
        """
        if backend_spec(backend).requires_indices:
            if batch is None:
                raise ValueError(
                    f"backend {backend!r} needs index values; pass batch=<SparseBatch>"
                )
            if lengths_by_feature is None:
                lengths_by_feature = lengths_from_batch(batch)
            workloads = build_device_workloads(self.plan, lengths_by_feature)
            cplan = self._cached_retrieval(backend).plan_batch(batch)
            return workloads, cplan
        if lengths_by_feature is None:
            if batch is None:
                raise ValueError("need lengths_by_feature or batch")
            lengths_by_feature = lengths_from_batch(batch)
        return build_device_workloads(self.plan, lengths_by_feature), None

    def run_batch(
        self, lengths_by_feature: Optional[Mapping[str, np.ndarray]] = None,
        backend: Optional[BackendName] = None,
        *,
        batch: Optional[SparseBatch] = None,
    ) -> PipelineTiming:
        """Simulate one full inference batch; returns per-stage timing.

        Cached backends require ``batch`` (the cost model depends on the
        index values); the uncached ones only need the jagged lengths.
        """
        be = backend or self.backend
        workloads, cplan = self._plan_emb(lengths_by_feature, be, batch)
        timing = PipelineTiming(batches=1)
        ref = self._next_trace_ref()
        # The whole synchronous run is one batch: scoping the trace ref
        # around it attributes every span the engine records to this batch.
        with trace_scope(self.cluster.profiler if ref is not None else None, ref):
            self.cluster.run(
                lambda cl: self._process(
                    cl, workloads, timing, be,
                    cached_plan=cplan, batch=batch, trace_ref=ref,
                )
            )
        return timing

    def run_batches(self, lengths_iter, backend: Optional[BackendName] = None) -> PipelineTiming:
        """Accumulate over an iterable of per-batch length maps (or, for
        cached backends, :class:`~repro.dlrm.batch.SparseBatch` objects)."""
        total = PipelineTiming()
        for lengths in lengths_iter:
            if isinstance(lengths, SparseBatch):
                total.add(self.run_batch(backend=backend, batch=lengths))
            else:
                total.add(self.run_batch(lengths, backend))
        return total

    def batch_process(
        self,
        lengths_by_feature: Optional[Mapping[str, np.ndarray]],
        timing: PipelineTiming,
        backend: Optional[BackendName] = None,
        *,
        batch: Optional[SparseBatch] = None,
        stream_suffix: str = "",
        trace: Optional[TraceRef] = None,
    ) -> ProcessGenerator:
        """Process generator for one batch — composable into larger host
        programs (the serving simulator interleaves these with request
        arrivals).  ``timing`` is filled at completion.

        ``stream_suffix`` gives this batch its own stream set (``"h2d"``,
        ``"dense"``, ``"default"`` each suffixed) so the continuous-batching
        scheduler can keep several batches in flight without serialising
        them on shared FIFO queues; the default empty suffix reproduces
        single-batch behaviour exactly.

        ``trace`` attributes the batch's spans to a trace context even when
        several batches interleave on the engine: the returned generator is
        wrapped so its frames (and the EMB/dense sub-processes it spawns)
        run under the ref, while engine work of *other* batches does not."""
        be = backend or self.backend
        workloads, cplan = self._plan_emb(lengths_by_feature, be, batch)
        timing.batches = 1
        gen = self._process(
            self.cluster, workloads, timing, be,
            cached_plan=cplan, batch=batch, stream_suffix=stream_suffix,
            trace_ref=trace,
        )
        if trace is None:
            return gen
        return traced(gen, self.cluster.profiler, trace)

    def run_batches_pipelined(
        self, lengths_iter, backend: Optional[BackendName] = None
    ) -> PipelineTiming:
        """Run a stream of batches with inter-batch input prefetch.

        While batch *n* computes, batch *n+1*'s inputs stream to the
        devices over the (otherwise idle) host link — the double-buffering
        every production inference loop does.  Returns accumulated stage
        times; ``total_ns`` is the true pipelined wall time, so it is
        *less* than the sum of per-batch totals.
        """
        be = backend or self.backend
        if backend_spec(be).requires_indices:
            raise ValueError(
                f"backend {be!r} is index-dependent; pipelined prefetch only "
                "supports lengths-driven backends (use run_batches)"
            )
        all_lengths = list(lengths_iter)
        if not all_lengths:
            return PipelineTiming()
        total = PipelineTiming()
        engine = self.cluster.engine

        def driver(cluster: Cluster) -> ProcessGenerator:
            t0 = engine.now
            workloads = [build_device_workloads(self.plan, l) for l in all_lengths]
            # Pre-submit every batch's input copies on the h2d streams:
            # FIFO stream order means batch i+1's copy starts the instant
            # batch i's finishes — i.e. under batch i's compute.  (This
            # idealises buffer depth; the staged bytes are accounting-only.)
            copy_ops_per_batch = []
            for wls in workloads:
                ops = []
                for dev in cluster.devices:
                    nbytes = self._input_bytes(dev.id, wls)
                    ops.append(
                        dev.stream("h2d").submit_delay(
                            nbytes / self.h2d_bandwidth, name="h2d"
                        )
                    )
                copy_ops_per_batch.append(ops)
            for i, wls in enumerate(workloads):
                per_batch = PipelineTiming(batches=1)
                yield engine.process(
                    self._process(
                        cluster, wls, per_batch, be,
                        copy_ops=copy_ops_per_batch[i],
                    ),
                    name=f"pipelined_batch{i}",
                )
                total.input_copy_ns += per_batch.input_copy_ns
                total.dense_mlp_ns += per_batch.dense_mlp_ns
                total.emb.add(per_batch.emb)
                total.interaction_top_ns += per_batch.interaction_top_ns
                total.overlap_saved_ns += per_batch.overlap_saved_ns
                total.batches += 1
            total.total_ns = engine.now - t0

        self.cluster.run(driver)
        return total

    def _process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PipelineTiming,
        backend: BackendName,
        copy_ops: Optional[list] = None,
        cached_plan=None,
        batch: Optional[SparseBatch] = None,
        stream_suffix: str = "",
        trace_ref: Optional[TraceRef] = None,
    ) -> ProcessGenerator:
        engine = cluster.engine
        prof = cluster.profiler
        t0 = engine.now

        # ---- stage 1: input staging over the host link ------------------------
        # ``copy_ops`` given: the driver pre-submitted this batch's copies
        # (inter-batch prefetch); just wait for them.
        if copy_ops is None:
            copy_ops = []
            first_chunk_ops = []
            K = self.staging_chunks if self.overlap_input_staging else 1
            for dev in cluster.devices:
                nbytes = self._input_bytes(dev.id, workloads)
                stream = dev.stream("h2d" + stream_suffix)
                chunk_ns = nbytes / self.h2d_bandwidth / K
                for c in range(K):
                    op = stream.submit_delay(chunk_ns, name=f"h2d.{c}")
                    if c == 0:
                        first_chunk_ops.append(op)
                    copy_ops.append(op)
            if self.overlap_input_staging:
                # §V pipelining: compute starts once the first input chunk
                # has landed; the rest streams in under the kernels.
                yield engine.all_of([op.done for op in first_chunk_ops])
            else:
                yield engine.all_of([op.done for op in copy_ops])
        else:
            yield engine.all_of([op.done for op in copy_ops])
        t1 = engine.now
        if trace_ref is not None:
            with trace_scope(prof, trace_ref):
                prof.record_span("input_copy", "h2d", -1, t0, t1)

        # ---- stage 2: dense MLP ∥ distributed EMB ------------------------------
        def dense_path() -> ProcessGenerator:
            ops = []
            for dev in cluster.devices:
                k = self._mlp_kernel("bottom_mlp", dev.id, self.config.bottom_sizes)
                stream = dev.stream("dense" + stream_suffix)
                stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
                ops.append(stream.submit(lambda d=dev, ks=k: execute_kernel(d, ks), name=k.name))
            yield engine.all_of([op.done for op in ops])
            return engine.now

        emb_timing = timing.emb
        emb_timing.batches = 1
        dense_gen = dense_path()
        if cached_plan is not None:
            emb_gen = self._cached_retrieval(backend).batch_process(
                cluster, cached_plan, emb_timing, stream_suffix=stream_suffix
            )
        elif backend.endswith("+resilient"):
            emb_gen = self._resilient_retrieval(backend).batch_process(
                cluster, workloads, emb_timing, batch=batch,
                stream_suffix=stream_suffix,
            )
        else:
            retrieval = self._baseline if backend == "baseline" else self._pgas
            emb_gen = retrieval.batch_process(
                cluster, workloads, emb_timing, stream_suffix=stream_suffix
            )
        if trace_ref is not None:
            # The EMB and dense paths run as sibling engine processes, so
            # the context must ride into their frames explicitly — this is
            # what threads the ref through every retrieval backend's spans
            # even when several traced batches interleave.
            dense_gen = traced(dense_gen, prof, trace_ref)
            emb_gen = traced(emb_gen, prof, trace_ref)
        dense_proc = engine.process(dense_gen, name="dense_path")
        emb_proc = engine.process(emb_gen, name="emb_path")
        # Compute may overlap the tail of a pipelined copy, but the batch is
        # not done until every input chunk has landed.
        yield engine.all_of([dense_proc, emb_proc] + [op.done for op in copy_ops])
        t2 = engine.now
        dense_ns = dense_proc.value - t1
        timing.dense_mlp_ns = dense_ns
        timing.overlap_saved_ns = dense_ns + emb_timing.total_ns - (t2 - t1)
        if trace_ref is not None:
            with trace_scope(prof, trace_ref):
                prof.record_span("dense_mlp", "dense", -1, t1, dense_proc.value)

        # ---- stage 3: interaction + top MLP ------------------------------------
        ops = []
        for dev in cluster.devices:
            stream = dev.stream("default" + stream_suffix)
            ki = self._interaction_kernel(dev.id)
            kt = self._mlp_kernel("top_mlp", dev.id, self.config.top_sizes)
            stream.submit_delay(dev.spec.kernel_launch_overhead_ns, name="launch")
            ops.append(stream.submit(lambda d=dev, ks=ki: execute_kernel(d, ks), name=ki.name))
            ops.append(stream.submit(lambda d=dev, ks=kt: execute_kernel(d, ks), name=kt.name))
        yield engine.all_of([op.done for op in ops])
        yield engine.timeout(cluster.devices[0].spec.sync_overhead_ns)
        t3 = engine.now
        if trace_ref is not None:
            with trace_scope(prof, trace_ref):
                prof.record_span("interaction_top", "top", -1, t2, t3)

        timing.input_copy_ns = t1 - t0
        timing.interaction_top_ns = t3 - t2
        timing.total_ns = t3 - t0

    # -- telemetry --------------------------------------------------------------

    def telemetry_report(self, timing: Optional[PipelineTiming] = None, **kwargs):
        """:class:`~repro.telemetry.RunReport` of the batches run so far.

        Captures the whole-pipeline profiler record (input staging, dense
        path, EMB, interaction) plus any cache/fault counters the active
        backend stamped.  Extra ``kwargs`` pass to
        :func:`repro.telemetry.collect_run_report`.
        """
        from ..telemetry import collect_run_report

        return collect_run_report(
            self.cluster.profiler,
            backend=self.backend,
            n_devices=self.cluster.n_devices,
            workload=self.config.workload,
            timing=timing,
            topology=self.cluster.topology,
            **kwargs,
        )
