"""Extension — §V input-partitioning overlap in the full pipeline.

The paper notes its CPU-side sparse-input partitioning is cheap only
because of the simple table sharding, and proposes merging the
partitioning into the computation kernel so "computation can start
immediately when the corresponding sparse input is picked out".  This
bench runs the full timed inference pipeline with and without that
pipelining (staged copies gated vs streamed in chunks under the kernels)
and checks the saving equals most of the staging stage.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE


def sweep(runner_scale: float):
    workload = scaled_config(WEAK_SCALING_BASE.scaled_tables(128), runner_scale)
    cfg = PipelineConfig(workload=workload)
    lengths = SyntheticDataGenerator(workload).lengths_batch()
    rows = {}
    for overlap in (False, True):
        t = DLRMInferencePipeline(
            cfg, 2, backend="pgas",
            overlap_input_staging=overlap, staging_chunks=8,
        ).run_batch(lengths)
        rows[overlap] = (t.total_ns, t.input_copy_ns)
    return rows


def test_input_overlap_extension(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["input staging", "pipeline total (ms)", "visible staging (ms)"],
        [
            ["gated (default)", f"{rows[False][0] / 1e6:.2f}", f"{rows[False][1] / 1e6:.2f}"],
            ["pipelined (§V)", f"{rows[True][0] / 1e6:.2f}", f"{rows[True][1] / 1e6:.2f}"],
        ],
    )
    save_artifact(artifact_dir, "E3_input_overlap.txt",
                  "[extension: input-staging overlap]\n" + table)

    t_plain, copy_plain = rows[False]
    t_olap, copy_olap = rows[True]
    assert t_olap < t_plain
    # The visible staging stage shrinks to ~1/chunks of the copy.
    assert copy_olap < 0.2 * copy_plain
    # The end-to-end saving recovers most of the hidden staging time.
    assert (t_plain - t_olap) > 0.5 * (copy_plain - copy_olap)
