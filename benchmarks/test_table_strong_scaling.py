"""T2 — the paper's strong-scaling speedup table (§IV-B1).

Paper values:

    | Speedup            | 2 GPUs | 3 GPUs | 4 GPUs |
    | PGAS over baseline | 2.95x  | 2.55x  | 2.44x  |  geomean 2.63x

Workload: 96 tables total x 1M rows x d=64, batch 16384, pooling <= 32 —
sized to max out a single V100's 32 GB.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import render_speedup_table


def test_table_strong_scaling(benchmark, runner, artifact_dir):
    result = benchmark.pedantic(runner.table_strong, rounds=1, iterations=1)
    save_artifact(artifact_dir, "T2_strong_speedup.txt", render_speedup_table(result))

    table = result.speedup_table()
    assert set(table) == {2, 3, 4}
    # Strong scaling exposes more communication per unit compute, so the
    # win is larger than in weak scaling (paper: 2.63x vs 1.97x geomean).
    for g, speedup in table.items():
        assert speedup > 2.0, f"PGAS speedup at {g} GPUs is only {speedup:.2f}x"
    # Largest at 2 GPUs, declining (paper: 2.95 -> 2.44).
    assert table[2] >= table[3] >= table[4]
    assert 2.0 < result.geomean_speedup < 3.5
