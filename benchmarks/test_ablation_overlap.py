"""Ablation — measured overlap: how much communication actually hid.

The paper's Figs. 7/10 show overlap qualitatively; this bench quantifies
it with the volume-weighted metric of :mod:`repro.bench.overlap`: the
fraction of delivered communication bytes whose delivery instant fell
inside a running kernel.  PGAS on NVLink should hide essentially
everything; the bulk-synchronous baseline, essentially nothing — by
construction, not by accident.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.overlap import measure_overlap
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.dlrm.data import WEAK_SCALING_BASE


def sweep(runner_scale: float):
    results = {}
    for G in (2, 4):
        cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * G), runner_scale)
        for backend in ("baseline", "pgas"):
            results[(G, backend)] = measure_overlap(cfg, G, backend)
    return results


def test_overlap_ablation(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    rows = []
    for (G, backend), r in sorted(results.items()):
        rows.append([
            str(G),
            backend,
            f"{r.hidden_fraction:.1%}",
            f"{r.total_comm_bytes / 1e6:.0f}",
            f"{r.exposed_comm_bytes / 1e6:.0f}",
        ])
    table = format_table(
        ["GPUs", "backend", "comm hidden", "comm (MB)", "exposed (MB)"], rows
    )
    save_artifact(artifact_dir, "A6_overlap.txt", "[ablation: measured overlap]\n" + table)

    for G in (2, 4):
        pgas = results[(G, "pgas")]
        base = results[(G, "baseline")]
        # Both backends moved the same payload...
        assert pgas.total_comm_bytes > 0
        assert pgas.total_comm_bytes == base.total_comm_bytes
        # ...but PGAS delivered it under the kernel, the baseline after it.
        assert pgas.hidden_fraction > 0.9
        assert base.hidden_fraction < 0.05
