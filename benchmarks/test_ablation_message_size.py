"""Ablation — PGAS message size and header overhead (§IV-A2d).

The paper attributes the PGAS runtime's slight growth with GPU count to
small-message header overhead ("the message header takes a good portion of
bandwidth"), but argues it stays hidden while per-wave communication fits
under per-wave computation.  This bench sweeps the message size on the
paper's weak 4-GPU configuration and checks both claims:

1. wire overhead falls as messages grow (headers amortise);
2. on NVLink, runtime is nearly insensitive to the header overhead —
   the inefficiency is hidden by overlap, exactly as §IV-A2d argues.
"""

from __future__ import annotations

import pytest

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.comm.pgas import PGASSpec
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import dgx_v100

MESSAGE_SIZES = (64, 128, 256, 1024, 4096)


def sweep(runner_scale: float):
    cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(256), runner_scale)
    plan = TableWiseSharding(cfg.table_configs(), 4)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    wls = build_device_workloads(plan, lengths)
    rows = []
    for msg in MESSAGE_SIZES:
        cl = dgx_v100(4)
        retr = PGASFusedRetrieval(cl, pgas_spec=PGASSpec(message_bytes=msg, header_bytes=32))
        t = retr.run_batch(wls)
        payload = sum(wl.remote_output_bytes for wl in wls)
        wire = cl.interconnect.total_wire_bytes()
        rows.append((msg, t.total_ns, wire / payload))
    return rows


def test_message_size_ablation(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["message bytes", "total (ms)", "wire/payload"],
        [[str(m), f"{t / 1e6:.2f}", f"{o:.3f}"] for m, t, o in rows],
    )
    save_artifact(artifact_dir, "A1_message_size.txt", "[ablation: message size]\n" + table)

    by_msg = {m: (t, o) for m, t, o in rows}
    # Headers amortise with larger messages.
    assert by_msg[64][1] > by_msg[256][1] > by_msg[4096][1]
    # 256 B + 32 B header = 12.5% overhead, the paper's operating point.
    assert by_msg[256][1] == pytest.approx(1.125, rel=0.01)
    # On NVLink the overhead hides under compute: <10% runtime spread
    # across a 16x change in message size.
    times = [t for _, t, _ in rows]
    assert (max(times) - min(times)) / min(times) < 0.10
