"""Fig. 5 — weak scaling factor curves (§IV-A1).

Factor = t(1 GPU) / t(G GPUs); ideal is a flat line at 1.0.  Paper shape:
the baseline drops to ~0.46 at 2 GPUs (the bulk-sync comm phase appears)
and then stays flat; PGAS stays near ideal because the communication hides
under the kernel.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import render_scaling_figure


def test_fig5_weak_scaling_factors(benchmark, runner, artifact_dir):
    result = benchmark.pedantic(runner.fig5, rounds=1, iterations=1)
    save_artifact(artifact_dir, "F5_weak_scaling.txt", render_scaling_figure(result))

    base = {g: result.scaling_factor("baseline", g) for g in (1, 2, 3, 4)}
    pgas = {g: result.scaling_factor("pgas", g) for g in (1, 2, 3, 4)}

    assert base[1] == pgas[1] == 1.0
    # The baseline cliff at 2 GPUs (paper: 0.46).
    assert 0.35 < base[2] < 0.65
    # ... then flat: 3- and 4-GPU factors within 10% of the 2-GPU one.
    assert abs(base[3] - base[2]) < 0.1 * base[2]
    assert abs(base[4] - base[2]) < 0.1 * base[2]
    # PGAS stays near ideal at every count.
    for g in (2, 3, 4):
        assert pgas[g] > 0.85, f"PGAS weak factor at {g} GPUs: {pgas[g]:.3f}"
        assert pgas[g] > base[g]
    # PGAS factor declines slowly (small-message overhead grows, §IV-A2d).
    assert pgas[2] >= pgas[3] >= pgas[4]
