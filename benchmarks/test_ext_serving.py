"""Extension — online serving: the EMB speedup as SLO headroom.

Recommendation inference is served online under tail-latency SLOs (the
paper's DeepRecSys citation).  This bench loads one simulated replica with
a Poisson request stream near its capacity and compares both backends'
p50/p99 latency and sustained throughput: hiding the embedding
communication converts directly into serving headroom.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.serving import InferenceServer, ServingSpec
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.units import ms

LOADS = (50_000, 400_000)
N_REQUESTS = 2000


def sweep():
    workload = WorkloadConfig(
        num_tables=32, rows_per_table=50_000, dim=64,
        batch_size=512, max_pooling=16, seed=2,
    )
    results = {}
    for qps in LOADS:
        for backend in ("baseline", "pgas"):
            pipe = DLRMInferencePipeline(
                PipelineConfig(workload=workload), 2, backend=backend
            )
            server = InferenceServer(
                pipe, ServingSpec(arrival_qps=qps, max_batch=512,
                                  batch_window_ns=2 * ms, seed=3),
            )
            results[(qps, backend)] = server.simulate(N_REQUESTS)
    return results


def test_serving_extension(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (qps, backend), r in sorted(results.items()):
        rows.append([
            f"{qps:,}",
            backend,
            f"{r.p50_ms:.2f}",
            f"{r.p99_ms:.2f}",
            f"{r.throughput_qps:,.0f}",
        ])
    table = format_table(
        ["offered qps", "backend", "p50 (ms)", "p99 (ms)", "served qps"], rows
    )
    save_artifact(artifact_dir, "E5_serving.txt", "[extension: online serving]\n" + table)

    for qps in LOADS:
        base = results[(qps, "baseline")]
        pgas = results[(qps, "pgas")]
        assert pgas.p50_ms < base.p50_ms
        assert pgas.p99_ms <= base.p99_ms * 1.02
    # Near capacity the PGAS replica sustains measurably more traffic.
    hi = LOADS[-1]
    assert results[(hi, "pgas")].throughput_qps > results[(hi, "baseline")].throughput_qps
