"""Fig. 8 — strong scaling factor curves (§IV-B1).

Factor = t(1 GPU) / t(G GPUs); ideal is the line y = G.  Paper shape:
"Neither PGAS nor baseline achieve good strong scaling: baseline with
{2,3,4} GPUs were all slower than baseline on single GPU.  PGAS has
slightly better strong scaling, with {2,3,4} GPUs all faster than a single
GPU ... the strong scaling for PGAS decreases beyond 2 GPUs" (~1.6x at 2).
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import render_scaling_figure


def test_fig8_strong_scaling_factors(benchmark, runner, artifact_dir):
    result = benchmark.pedantic(runner.fig8, rounds=1, iterations=1)
    save_artifact(artifact_dir, "F8_strong_scaling.txt", render_scaling_figure(result))

    base = {g: result.scaling_factor("baseline", g) for g in (1, 2, 3, 4)}
    pgas = {g: result.scaling_factor("pgas", g) for g in (1, 2, 3, 4)}

    # Baseline: every multi-GPU run SLOWER than its own single GPU.
    for g in (2, 3, 4):
        assert base[g] < 1.0, f"baseline strong factor at {g} GPUs: {base[g]:.2f}"

    # PGAS: every multi-GPU run faster than its own single GPU...
    for g in (2, 3, 4):
        assert pgas[g] > 1.0, f"PGAS strong factor at {g} GPUs: {pgas[g]:.2f}"
        assert pgas[g] > base[g]

    # ... with ~1.6x at 2 GPUs (paper) and far from the ideal line G.
    assert 1.3 < pgas[2] < 2.0
    for g in (2, 3, 4):
        assert pgas[g] < g  # latency-limited kernel: nobody reaches ideal
