"""Ablation — all-to-all schedule: direct p2p vs pairwise exchange rounds.

NCCL's NVLink all-to-all fires all pairwise transfers at once (every pair
has its own links on the DGX clique); the classic pairwise-rounds schedule
inserts a barrier after each of the G-1 exchange rounds.  This ablation
confirms the baseline's schedule choice is not what loses to PGAS: even
with the best schedule (direct), the bulk-synchronous baseline stays ~2x
behind, because the cost is the *phase structure*, not the schedule.
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.comm.collective import CollectiveSpec
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import dgx_v100


def sweep(runner_scale: float):
    G = 4
    cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * G), runner_scale)
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    wls = build_device_workloads(plan, lengths)

    results = {}
    for algo in ("direct", "pairwise"):
        spec = CollectiveSpec(alltoall_algorithm=algo)
        t = BaselineRetrieval(dgx_v100(G), collective_spec=spec).run_batch(wls)
        results[algo] = t.total_ns
    results["pgas"] = PGASFusedRetrieval(dgx_v100(G)).run_batch(wls).total_ns
    return results


def test_alltoall_schedule_ablation(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["scheme", "total (ms)"],
        [
            ["baseline / direct a2a", f"{results['direct'] / 1e6:.2f}"],
            ["baseline / pairwise a2a", f"{results['pairwise'] / 1e6:.2f}"],
            ["PGAS fused", f"{results['pgas'] / 1e6:.2f}"],
        ],
    )
    save_artifact(artifact_dir, "A5_alltoall_schedule.txt",
                  "[ablation: all-to-all schedule]\n" + table)

    # Pairwise's round barriers cost extra on the NVLink clique.
    assert results["pairwise"] >= results["direct"]
    # Even the best collective schedule stays far behind the fused scheme.
    assert results["direct"] / results["pgas"] > 1.5
