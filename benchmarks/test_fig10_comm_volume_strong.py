"""Fig. 10 — communication volume over time, 4 GPUs, strong config (§IV-B2).

Same instrument as Fig. 7, at 4 GPUs with the strong-scaling workload:
"the communication volume is well-distributed over the computation time
and largely overlaps with computation on 4 GPUs", versus the baseline's
flat-then-ramp curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import save_artifact
from repro.bench.reporting import render_comm_volume


def test_fig10_comm_volume_4gpu(benchmark, runner, artifact_dir):
    traces = benchmark.pedantic(runner.fig10, rounds=1, iterations=1)
    save_artifact(
        artifact_dir, "F10_comm_volume_strong_4gpu.txt", render_comm_volume(traces)
    )

    pgas = next(t for t in traces if t.backend == "pgas")
    base = next(t for t in traces if t.backend == "baseline")
    assert pgas.n_devices == base.n_devices == 4

    assert pgas.total_units == pytest.approx(base.total_units, rel=1e-6)

    # Baseline: compute-silent prefix, then the collective ramp.
    assert base.flat_prefix_fraction() > 0.3
    assert pgas.flat_prefix_fraction() < 0.2

    # PGAS spread vs baseline burst: compare the 10%->90% ramp width.
    def ramp_width(trace):
        t, v = trace.normalized()
        t10 = t[np.searchsorted(v, 0.1)]
        t90 = t[np.searchsorted(v, 0.9)]
        return t90 - t10

    assert ramp_width(pgas) > 0.5  # spread over most of the kernel
    assert ramp_width(base) < 0.5 * ramp_width(pgas)  # concentrated burst

    # PGAS finishes the whole pass much faster.
    assert base.total_ns / pgas.total_ns > 1.7
