"""Shared fixtures for the benchmark suite.

Every paper artifact (two speedup tables, Figs. 5–10) is regenerated from
two cached scaling sweeps at the paper's workload configuration; each bench
asserts the qualitative shape the paper reports and writes its rendered
artifact under ``benchmarks/artifacts/`` (the inputs to EXPERIMENTS.md).

``--repro-batches`` / ``--repro-scale`` control fidelity: the defaults
(10 batches, full 16384 batch size) run the whole suite in well under a
minute; ``--repro-batches=100 --repro-scale=1.0`` is the paper's exact
protocol.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.runner import ExperimentRunner

ARTIFACT_DIR = pathlib.Path(__file__).parent / "artifacts"


def pytest_addoption(parser):
    parser.addoption(
        "--repro-batches", type=int, default=10,
        help="batches accumulated per measurement (paper: 100)",
    )
    parser.addoption(
        "--repro-scale", type=float, default=1.0,
        help="batch-size scale factor (1.0 = paper's 16384)",
    )


@pytest.fixture(scope="session")
def runner(request) -> ExperimentRunner:
    """One cached runner shared by every bench in the session."""
    return ExperimentRunner(
        n_batches=request.config.getoption("--repro-batches"),
        scale=request.config.getoption("--repro-scale"),
        device_counts=(1, 2, 3, 4),
    )


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


def save_artifact(artifact_dir: pathlib.Path, name: str, text: str) -> None:
    """Write one rendered artifact (and echo it for -s runs)."""
    (artifact_dir / name).write_text(text + "\n")
    print(f"\n{text}\n")
