"""Ablation — pooling-factor sweep: compute/communication balance.

The EMB kernel's compute scales with the pooling factor (lookups per bag)
while its output — the communication volume — does not.  The paper's weak
test (pooling <= 128) is compute-rich, its strong test (pooling <= 32)
comm-rich; that ratio is why the strong-scaling speedups are larger.  This
bench sweeps the cap and checks the mechanism directly: the PGAS advantage
falls as pooling grows, because an ever-larger kernel hides the same
communication either way, while the baseline amortises its comm phase.
"""

from __future__ import annotations

import dataclasses

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE

POOLING_CAPS = (8, 32, 128)


def sweep(runner_scale: float):
    rows = []
    for cap in POOLING_CAPS:
        cfg = dataclasses.replace(
            scaled_config(WEAK_SCALING_BASE.scaled_tables(128), runner_scale),
            max_pooling=cap,
        )
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        t_base = DistributedEmbedding(cfg, 2, backend="baseline").forward_timed(lengths)
        t_pgas = DistributedEmbedding(cfg, 2, backend="pgas").forward_timed(lengths)
        rows.append((cap, t_base.total_ns, t_pgas.total_ns))
    return rows


def test_pooling_ablation(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["max pooling", "baseline (ms)", "PGAS (ms)", "speedup"],
        [
            [str(c), f"{tb / 1e6:.2f}", f"{tp / 1e6:.2f}", f"{tb / tp:.2f}x"]
            for c, tb, tp in rows
        ],
    )
    save_artifact(artifact_dir, "A4_pooling.txt", "[ablation: pooling factor]\n" + table)

    speedups = {c: tb / tp for c, tb, tp in rows}
    # Comm-heavy (small pooling) shows the biggest PGAS advantage —
    # the weak-vs-strong asymmetry of the paper's two tables.
    assert speedups[8] > speedups[32] > speedups[128]
    assert speedups[8] > 2.0
    assert speedups[128] > 1.3
