"""Extension — scaling past one node (§V: "extend this work to a multinode
system").

The paper's results live on one NVLink node; its future-work section warns
that inter-node links ("higher latency and lower bandwidth") may erode the
PGAS scheme unless the aggregator recovers bandwidth utilisation.  This
bench weak-scales from one 2-GPU node to two nodes (4 GPUs, NIC between
nodes) and measures all three schemes: collective baseline, naked PGAS
small messages, and PGAS + aggregator.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.aggregator import AggregatorSpec
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import Cluster, multinode, nvlink_dgx1
from repro.simgpu.units import KiB


def run_point(cluster_fn, n_devices: int, runner_scale: float):
    cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * n_devices), runner_scale)
    plan = TableWiseSharding(cfg.table_configs(), n_devices)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    wls = build_device_workloads(plan, lengths)
    return {
        "baseline": BaselineRetrieval(cluster_fn()).run_batch(wls).total_ns,
        "pgas": PGASFusedRetrieval(cluster_fn()).run_batch(wls).total_ns,
        "pgas+agg": PGASFusedRetrieval(
            cluster_fn(), aggregator_spec=AggregatorSpec(flush_bytes=512 * KiB)
        ).run_batch(wls).total_ns,
    }


def sweep(runner_scale: float):
    return {
        "1 node / 2 GPUs": run_point(
            lambda: Cluster(2, topology=nvlink_dgx1(2)), 2, runner_scale
        ),
        "2 nodes / 4 GPUs": run_point(
            lambda: multinode(2, devices_per_node=2), 4, runner_scale
        ),
    }


def test_multinode_extension(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    rows = []
    for system, times in results.items():
        rows.append([
            system,
            f"{times['baseline'] / 1e6:.2f}",
            f"{times['pgas'] / 1e6:.2f}",
            f"{times['pgas+agg'] / 1e6:.2f}",
        ])
    table = format_table(
        ["system", "baseline (ms)", "PGAS (ms)", "PGAS+agg (ms)"], rows
    )
    save_artifact(artifact_dir, "E4_multinode.txt", "[extension: multi-node]\n" + table)

    intra = results["1 node / 2 GPUs"]
    inter = results["2 nodes / 4 GPUs"]

    # Weak scaling across the NIC costs everyone something.
    for scheme in ("baseline", "pgas", "pgas+agg"):
        assert inter[scheme] > intra[scheme]

    # Naked small messages suffer most inter-node; aggregation recovers it.
    assert inter["pgas+agg"] < inter["pgas"]
    # And even inter-node, one-sided + aggregation beats the collective.
    assert inter["pgas+agg"] < inter["baseline"]
    # Intra-node, the aggregator is neutral (within 5%).
    assert abs(intra["pgas+agg"] - intra["pgas"]) < 0.05 * intra["pgas"]
