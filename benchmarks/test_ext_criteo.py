"""Extension — a realistic heterogeneous (Criteo-shaped) workload.

The paper's evaluation uses 64 uniform tables; production table sets span
six orders of magnitude in cardinality with mixed single-/multi-valued
features (§II-A).  This bench plans a balanced placement for a 96-table
Criteo-like set, runs both backends on it at 4 GPUs, and checks the PGAS
advantage carries over from the synthetic-uniform setting to the skewed
one.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.planner import plan_table_wise
from repro.core.workload import build_device_workloads
from repro.dlrm.heterogeneous import HeterogeneousDataGenerator, criteo_like
from repro.simgpu import dgx_v100


def sweep():
    G = 4
    workload = criteo_like(num_tables=96, dim=64, batch_size=16_384, seed=7)
    report = plan_table_wise(workload.table_configs(), n_devices=G)
    lengths = HeterogeneousDataGenerator(workload).lengths_batch()
    wls = build_device_workloads(report.plan, lengths)
    t_base = BaselineRetrieval(dgx_v100(G)).run_batch(wls)
    t_pgas = PGASFusedRetrieval(dgx_v100(G)).run_batch(wls)
    return report, t_base, t_pgas


def test_criteo_extension(benchmark, runner, artifact_dir):
    report, t_base, t_pgas = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["scheme", "total (ms)", "compute (ms)", "comm (ms)", "sync+unpack (ms)"],
        [
            ["baseline", f"{t_base.total_ns / 1e6:.2f}", f"{t_base.compute_ns / 1e6:.2f}",
             f"{t_base.comm_ns / 1e6:.2f}", f"{t_base.sync_unpack_ns / 1e6:.2f}"],
            ["PGAS", f"{t_pgas.total_ns / 1e6:.2f}", f"{t_pgas.compute_ns / 1e6:.2f}",
             "-", "-"],
        ],
    )
    text = (
        "[extension: Criteo-like heterogeneous workload]\n"
        + report.summary() + "\n\n" + table
        + f"\n\nspeedup: {t_base.total_ns / t_pgas.total_ns:.2f}x"
    )
    save_artifact(artifact_dir, "E6_criteo.txt", text)

    # The balanced placement is feasible and tight.
    assert report.imbalance < 1.3
    assert all(u <= 1.0 for u in report.utilization)
    # The PGAS advantage survives heterogeneity.
    assert t_base.total_ns / t_pgas.total_ns > 1.3
