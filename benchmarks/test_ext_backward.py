"""Extension — the §V backward pass, baseline vs PGAS atomics.

The paper predicts the backward pass benefits even more than the forward:
gradient traffic is at least as large, the baseline needs a pack step plus
collective rounds, and the heavier gradient computation leaves a larger
window to hide communication.  This bench runs both backward schemes on
the weak 2- and 4-GPU configurations and checks the predicted ordering.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.backward import BaselineBackward, PGASFusedBackward
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import dgx_v100


def sweep(runner_scale: float):
    rows = []
    for G in (2, 4):
        cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * G), runner_scale)
        plan = TableWiseSharding(cfg.table_configs(), G)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        wls = build_device_workloads(plan, lengths)
        t_base = BaselineBackward(dgx_v100(G)).run_batch(wls)
        t_pgas = PGASFusedBackward(dgx_v100(G)).run_batch(wls)
        rows.append((G, t_base.total_ns, t_pgas.total_ns))
    return rows


def test_backward_extension(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["GPUs", "baseline bwd (ms)", "PGAS bwd (ms)", "speedup"],
        [
            [str(g), f"{tb / 1e6:.2f}", f"{tp / 1e6:.2f}", f"{tb / tp:.2f}x"]
            for g, tb, tp in rows
        ],
    )
    save_artifact(artifact_dir, "E1_backward.txt", "[extension: backward pass]\n" + table)

    for g, tb, tp in rows:
        speedup = tb / tp
        # The §V prediction: a significant improvement, comparable to or
        # exceeding the forward pass's.
        assert speedup > 1.8, f"backward speedup at {g} GPUs only {speedup:.2f}x"
