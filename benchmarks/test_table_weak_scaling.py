"""T1 — the paper's weak-scaling speedup table (§IV-A1).

Paper values on 4x V100 + NVLink:

    | Speedup            | 2 GPUs | 3 GPUs | 4 GPUs |
    | PGAS over baseline | 2.10x  | 1.95x  | 1.87x  |  geomean 1.97x

Workload: 64 tables/GPU x 1M rows x d=64, batch 16384, pooling <= 128,
100 batches.  We assert the shape: a consistent ~2x win, largest at 2 GPUs.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import render_speedup_table


def test_table_weak_scaling(benchmark, runner, artifact_dir):
    result = benchmark.pedantic(runner.table_weak, rounds=1, iterations=1)
    save_artifact(artifact_dir, "T1_weak_speedup.txt", render_speedup_table(result))

    table = result.speedup_table()
    assert set(table) == {2, 3, 4}
    # A consistent win at every GPU count, in the paper's ballpark (~2x).
    for g, speedup in table.items():
        assert speedup > 1.5, f"PGAS speedup at {g} GPUs is only {speedup:.2f}x"
    # Largest at 2 GPUs, declining with more GPUs (paper: 2.10 -> 1.87).
    assert table[2] >= table[3] >= table[4]
    # Geomean within the paper's regime.
    assert 1.5 < result.geomean_speedup < 2.5
