"""Ablation — fabric sensitivity and the §V aggregator.

The paper's future-work section predicts that on slower, higher-latency
inter-node links, naked small messages lose their bandwidth budget to
headers and the asynchronous aggregator (ref [7]) recovers it by flushing
large frames.  This bench runs the same 2-GPU weak workload over NVLink,
PCIe, and a NIC-class link, with and without aggregation, and checks the
crossover: aggregation is ~neutral on NVLink but wins on the NIC.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.comm.pgas import PGASSpec
from repro.core.aggregator import AggregatorSpec
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import Cluster, multinode_topology, nvlink_dgx1, pcie_topology
from repro.simgpu.units import KiB

FABRICS = {
    "nvlink": lambda: Cluster(2, topology=nvlink_dgx1(2)),
    "pcie": lambda: Cluster(2, topology=pcie_topology(2)),
    "nic": lambda: Cluster(2, topology=multinode_topology(2, devices_per_node=1)),
}


def sweep(runner_scale: float):
    cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(128), runner_scale)
    plan = TableWiseSharding(cfg.table_configs(), 2)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    wls = build_device_workloads(plan, lengths)
    results = {}
    for fabric, make_cluster in FABRICS.items():
        plain = PGASFusedRetrieval(
            make_cluster(), pgas_spec=PGASSpec(message_bytes=256, header_bytes=32)
        ).run_batch(wls)
        aggregated = PGASFusedRetrieval(
            make_cluster(),
            pgas_spec=PGASSpec(message_bytes=256, header_bytes=32),
            aggregator_spec=AggregatorSpec(flush_bytes=512 * KiB),
        ).run_batch(wls)
        results[fabric] = (plain.total_ns, aggregated.total_ns)
    return results


def test_aggregator_fabric_crossover(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["fabric", "small messages (ms)", "aggregated (ms)", "agg speedup"],
        [
            [f, f"{p / 1e6:.2f}", f"{a / 1e6:.2f}", f"{p / a:.2f}x"]
            for f, (p, a) in results.items()
        ],
    )
    save_artifact(artifact_dir, "A2_aggregator_fabric.txt", "[ablation: aggregator]\n" + table)

    # On NVLink the aggregator buys nothing (comm already hidden).
    nv_plain, nv_agg = results["nvlink"]
    assert abs(nv_plain - nv_agg) / nv_plain < 0.05

    # Slower fabrics expose communication.
    assert results["pcie"][0] > nv_plain
    assert results["nic"][0] > results["pcie"][0]

    # On the NIC, aggregation recovers a meaningful share of the overhead.
    nic_plain, nic_agg = results["nic"]
    assert nic_agg < nic_plain
    assert nic_plain / nic_agg > 1.05
