"""Fig. 9 — strong-scaling runtime breakdown (§IV-B2).

Paper expectations asserted below:
- baseline computation decreases from 1 to 2 GPUs, then stays roughly the
  same (the kernel becomes latency-limited — ncu: <60% of both
  throughputs);
- baseline communication time decreases with more GPUs;
- PGAS total ~= baseline computation alone (communication fully hidden).

Known divergence (recorded in EXPERIMENTS.md): the paper reports the
sync+unpack component *increasing* with GPU count; under table-wise
sharding the per-device received bytes shrink as B/G x (T - T/G), so our
per-device rearrangement model has it decreasing.  We assert our model's
self-consistent behaviour here and flag the difference rather than tune
it away.
"""

from __future__ import annotations

import pytest

from conftest import save_artifact
from repro.bench.reporting import render_breakdown


def test_fig9_strong_breakdown(benchmark, runner, artifact_dir):
    bd = benchmark.pedantic(runner.fig9, rounds=1, iterations=1)
    save_artifact(artifact_dir, "F9_strong_breakdown.txt", render_breakdown(bd))

    bars = {b.n_devices: b for b in bd.bars}

    # Computation drops 1 -> 2 GPUs ...
    assert bars[2].baseline_compute_ns < 0.75 * bars[1].baseline_compute_ns
    # ... then flattens (latency-limited): within 10% across 2-4 GPUs.
    c2 = bars[2].baseline_compute_ns
    for g in (3, 4):
        assert bars[g].baseline_compute_ns == pytest.approx(c2, rel=0.1)

    # Communication decreases with more GPUs.
    assert bars[2].baseline_comm_ns > bars[3].baseline_comm_ns > bars[4].baseline_comm_ns

    # Baseline multi-GPU total exceeds its single-GPU total (the slowdown).
    for g in (2, 3, 4):
        assert bars[g].baseline_total_ns > bars[1].baseline_total_ns

    # PGAS total ~= baseline compute component (+ small exposed overhead).
    for g in (2, 3, 4):
        b = bars[g]
        assert b.pgas_total_ns < 1.25 * b.baseline_compute_ns
        assert b.pgas_total_ns < 0.55 * b.baseline_total_ns
