"""Extension — full training step: the EMB communication paid twice.

Training is the paper's lead motivation (>50% of Meta's training cycles);
a step pays the EMB layout conversion forward *and* the gradient exchange
backward.  This bench times complete steps (forward pipeline + overlapped
dense/EMB backward) under both communication schemes at the weak 2- and
4-GPU configurations.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.pipeline import PipelineConfig
from repro.core.train_pipeline import DLRMTrainingPipeline
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE


def sweep(runner_scale: float):
    rows = []
    for G in (2, 4):
        workload = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * G), runner_scale)
        cfg = PipelineConfig(workload=workload)
        lengths = SyntheticDataGenerator(workload).lengths_batch()
        t_base = DLRMTrainingPipeline(cfg, G, backend="baseline").run_step(lengths)
        t_pgas = DLRMTrainingPipeline(cfg, G, backend="pgas").run_step(lengths)
        rows.append((G, t_base, t_pgas))
    return rows


def test_training_step_extension(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    table = format_table(
        ["GPUs", "baseline step (ms)", "PGAS step (ms)", "speedup",
         "baseline fwd/bwd (ms)", "PGAS fwd/bwd (ms)"],
        [
            [
                str(G),
                f"{tb.total_ns / 1e6:.2f}",
                f"{tp.total_ns / 1e6:.2f}",
                f"{tb.total_ns / tp.total_ns:.2f}x",
                f"{tb.forward.total_ns / 1e6:.1f}/{(tb.total_ns - tb.forward.total_ns) / 1e6:.1f}",
                f"{tp.forward.total_ns / 1e6:.1f}/{(tp.total_ns - tp.forward.total_ns) / 1e6:.1f}",
            ]
            for G, tb, tp in rows
        ],
    )
    save_artifact(artifact_dir, "E7_training_step.txt",
                  "[extension: full training step]\n" + table)

    for G, tb, tp in rows:
        speedup = tb.total_ns / tp.total_ns
        assert speedup > 1.4, f"training-step speedup at {G} GPUs only {speedup:.2f}x"
        # Both directions contribute: the backward phase alone also wins.
        bwd_base = tb.total_ns - tb.forward.total_ns
        bwd_pgas = tp.total_ns - tp.forward.total_ns
        assert bwd_pgas < bwd_base
