"""Ablation — batch-size sweep: the latency-limited regime (§III-A3).

The paper's challenge list notes that "with small batch sizes, the
overhead of CUDA kernel synchronization can become significant compared to
communication and computation, as the forward pass is essentially
latency-limited".  This bench sweeps the batch size on the 2-GPU weak
configuration and checks:

1. the PGAS advantage grows as batches shrink (fixed control-path costs
   dominate the baseline);
2. at large batches the advantage settles at the bandwidth-regime ~2x.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE

BATCH_SIZES = (256, 1024, 4096, 16384)


def sweep():
    rows = []
    for B in BATCH_SIZES:
        cfg = WEAK_SCALING_BASE.scaled_tables(128).with_batch_size(B)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        t_base = DistributedEmbedding(cfg, 2, backend="baseline").forward_timed(lengths)
        t_pgas = DistributedEmbedding(cfg, 2, backend="pgas").forward_timed(lengths)
        rows.append((B, t_base.total_ns, t_pgas.total_ns))
    return rows


def test_batch_size_ablation(benchmark, runner, artifact_dir):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = format_table(
        ["batch", "baseline (ms)", "PGAS (ms)", "speedup"],
        [
            [str(b), f"{tb / 1e6:.3f}", f"{tp / 1e6:.3f}", f"{tb / tp:.2f}x"]
            for b, tb, tp in rows
        ],
    )
    save_artifact(artifact_dir, "A3_batch_size.txt", "[ablation: batch size]\n" + table)

    speedups = {b: tb / tp for b, tb, tp in rows}
    # PGAS wins at every batch size.
    assert all(s > 1.0 for s in speedups.values())
    # Runtime grows with batch size for both backends.
    times_base = [tb for _, tb, _ in rows]
    times_pgas = [tp for _, _, tp in rows]
    assert times_base == sorted(times_base)
    assert times_pgas == sorted(times_pgas)
    # Large-batch speedup settles in the paper's ~2x bandwidth regime.
    assert 1.5 < speedups[16384] < 2.5
