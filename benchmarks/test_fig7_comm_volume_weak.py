"""Fig. 7 — communication volume over time, 2 GPUs, weak config (§IV-A2b).

The paper's instrument: a counter atomically bumped by every RDMA write,
polled on a fixed period.  Shape: the PGAS volume is "well-distributed over
the computation time", while the baseline "has a long initial period when
communication volume stays flat at 0" followed by the collective's ramp.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import save_artifact
from repro.bench.reporting import render_comm_volume


def test_fig7_comm_volume_2gpu(benchmark, runner, artifact_dir):
    traces = benchmark.pedantic(runner.fig7, rounds=1, iterations=1)
    save_artifact(artifact_dir, "F7_comm_volume_weak_2gpu.txt", render_comm_volume(traces))

    pgas = next(t for t in traces if t.backend == "pgas")
    base = next(t for t in traces if t.backend == "baseline")

    # Identical payload moved either way (same inputs, same split).
    assert pgas.total_units == pytest.approx(base.total_units, rel=1e-6)

    # Baseline: flat-at-zero through (at least) a third of the run.
    assert base.flat_prefix_fraction() > 0.33
    # PGAS: traffic starts with the first retired wave.
    assert pgas.flat_prefix_fraction() < 0.15

    # PGAS volume is spread: mid-run cumulative near half the total.
    t, v = pgas.normalized()
    mid = v[np.searchsorted(t, 0.5)]
    assert 0.3 < mid < 0.7

    # Baseline is back-loaded: almost nothing by mid-run.
    t, v = base.normalized()
    mid = v[np.searchsorted(t, 0.5)]
    assert mid < 0.15

    # And the PGAS run itself is about 2x shorter.
    assert base.total_ns / pgas.total_ns > 1.5
