"""Motivation — the §I capacity wall, measured.

"The memory capacity requirements of DLRMs grew 16-fold between 2017 and
2021" (§II-A); once tables outgrow one GPU, model parallelism forces the
layout-conversion communication this paper attacks.  This bench projects a
2×-per-generation table budget across four generations, plans the minimal
V100 count per generation, and measures both backends: the PGAS advantage
appears exactly when the model crosses the single-GPU wall and persists
as it keeps growing.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.capacity import run_capacity_study


def test_capacity_motivation(benchmark, runner, artifact_dir):
    study = benchmark.pedantic(
        lambda: run_capacity_study(base_tables=32, steps=4, growth_per_step=2.0),
        rounds=1, iterations=1,
    )
    save_artifact(artifact_dir, "M1_capacity.txt", study.render())

    gpus = [p.min_gpus for p in study.points]
    # Growth forces multi-GPU within the projection (the paper's premise).
    assert gpus[0] == 1
    assert gpus[-1] >= 2
    assert gpus == sorted(gpus)
    # Once distributed, PGAS wins, and keeps winning as scale grows.
    distributed = [p for p in study.points if p.min_gpus > 1]
    assert distributed
    for p in distributed:
        assert p.speedup > 1.4
