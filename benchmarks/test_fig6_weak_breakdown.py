"""Fig. 6 — weak-scaling runtime breakdown (§IV-A2).

Paper expectations, asserted below:
- baseline computation time stays the same (constant per-GPU workload);
- baseline communication time decreases with more GPUs (more links);
- baseline sync+unpack time increases (more received data to rearrange);
- the comm decrease and sync+unpack increase roughly cancel, so baseline
  total stays flat beyond 2 GPUs;
- PGAS total is only slightly more than baseline computation alone.
"""

from __future__ import annotations

import pytest

from conftest import save_artifact
from repro.bench.reporting import render_breakdown


def test_fig6_weak_breakdown(benchmark, runner, artifact_dir):
    bd = benchmark.pedantic(runner.fig6, rounds=1, iterations=1)
    save_artifact(artifact_dir, "F6_weak_breakdown.txt", render_breakdown(bd))

    bars = {b.n_devices: b for b in bd.bars}

    # Computation flat across GPU counts.
    c1 = bars[1].baseline_compute_ns
    for g in (2, 3, 4):
        assert bars[g].baseline_compute_ns == pytest.approx(c1, rel=0.05)

    # Communication decreases with more GPUs.
    assert bars[2].baseline_comm_ns > bars[3].baseline_comm_ns > bars[4].baseline_comm_ns

    # Sync+unpack increases with more GPUs.
    assert bars[2].baseline_sync_unpack_ns < bars[3].baseline_sync_unpack_ns
    assert bars[3].baseline_sync_unpack_ns < bars[4].baseline_sync_unpack_ns

    # The two effects roughly cancel: totals flat beyond 2 GPUs.
    t2 = bars[2].baseline_total_ns
    for g in (3, 4):
        assert bars[g].baseline_total_ns == pytest.approx(t2, rel=0.1)

    # PGAS total ~= baseline compute + small overhead (the key comparison).
    for g in (2, 3, 4):
        b = bars[g]
        assert b.pgas_total_ns < 1.2 * b.baseline_compute_ns
        assert b.pgas_total_ns > b.baseline_compute_ns  # not free either
