"""Extension — row-wise sharding (§V: "partitioning by rows").

Row-wise sharding trades balanced memory for a much heavier layout
conversion: every device produces a *partial* pool for every (table,
sample), so the exchange volume grows G-fold and the baseline needs an
explicit reduction after its all-to-all.  The paper predicts PGAS atomics
help even more here; this bench measures both schemes under both shardings
at the weak 4-GPU configuration and checks that ordering.
"""

from __future__ import annotations

from conftest import save_artifact
from repro.bench.reporting import format_table
from repro.bench.runner import scaled_config
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.rowwise import (
    RowWiseBaselineRetrieval,
    RowWisePGASRetrieval,
    build_rowwise_workloads,
)
from repro.core.sharding import RowWiseSharding, TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE
from repro.simgpu import dgx_v100


def sweep(runner_scale: float):
    G = 4
    cfg = scaled_config(WEAK_SCALING_BASE.scaled_tables(64 * G), runner_scale)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()

    tw_plan = TableWiseSharding(cfg.table_configs(), G)
    tw_wls = build_device_workloads(tw_plan, lengths)
    rw_plan = RowWiseSharding(cfg.table_configs(), G)
    rw_wls = build_rowwise_workloads(rw_plan, lengths)

    return {
        ("table-wise", "baseline"): BaselineRetrieval(dgx_v100(G)).run_batch(tw_wls).total_ns,
        ("table-wise", "pgas"): PGASFusedRetrieval(dgx_v100(G)).run_batch(tw_wls).total_ns,
        ("row-wise", "baseline"): RowWiseBaselineRetrieval(dgx_v100(G)).run_batch(rw_wls).total_ns,
        ("row-wise", "pgas"): RowWisePGASRetrieval(dgx_v100(G)).run_batch(rw_wls).total_ns,
    }


def test_rowwise_extension(benchmark, runner, artifact_dir):
    results = benchmark.pedantic(sweep, args=(runner.scale,), rounds=1, iterations=1)

    rows = []
    for sharding in ("table-wise", "row-wise"):
        tb = results[(sharding, "baseline")]
        tp = results[(sharding, "pgas")]
        rows.append([sharding, f"{tb / 1e6:.2f}", f"{tp / 1e6:.2f}", f"{tb / tp:.2f}x"])
    table = format_table(["sharding", "baseline (ms)", "PGAS (ms)", "speedup"], rows)
    save_artifact(artifact_dir, "E2_rowwise.txt", "[extension: row-wise sharding]\n" + table)

    tw_speedup = results[("table-wise", "baseline")] / results[("table-wise", "pgas")]
    rw_speedup = results[("row-wise", "baseline")] / results[("row-wise", "pgas")]
    # Row-wise's heavier exchange + reduction amplifies the PGAS advantage.
    assert rw_speedup > tw_speedup
    assert rw_speedup > 1.8
    # And row-wise costs more than table-wise under either backend
    # (the paper's reason for using the "simple" scheme on one node).
    assert results[("row-wise", "baseline")] > results[("table-wise", "baseline")]
    assert results[("row-wise", "pgas")] > results[("table-wise", "pgas")]
